//! The HAMS controller: the memory-controller-hub logic that aggregates
//! NVDIMM and ULL-Flash into one Memory-over-Storage address space.
//!
//! [`HamsController::access`] is the single entry point the MMU-facing
//! platform uses: given a MoS byte address, a read/write flag and the current
//! simulated time it returns when the access completes and how the latency
//! splits across NVDIMM, the DMA interface and the SSD — the decomposition of
//! Fig. 18. The controller implements:
//!
//! * the direct-mapped NVDIMM cache with tag/valid/dirty/busy bits (Fig. 11),
//!   sharded into independent banks ([`ShardedTagArray`]) — HAMS has no
//!   OS-side ordering point, so probes route straight to the owning bank and
//!   no global structure serializes concurrent batch workers,
//! * fill and eviction via the in-controller NVMe engine with journal tags,
//! * hazard avoidance through PRP-pool cloning, the busy bit and the wait
//!   queue (Fig. 13–14),
//! * loose (PCIe) and tight (DDR4 register interface + lock register) attach,
//! * persist (`FUA`, single outstanding command) and extend modes,
//! * power-failure handling and journal-tag recovery (Fig. 15),
//! * the multi-device archive backend ([`hams_flash::ArchiveSet`]): fills
//!   and evictions route to the device owning their stripe, journal tags
//!   carry `(shard, device)`, and the CXL-attached topology moves pages
//!   across the CXL link instead of the attach-mode interface.

use hams_flash::{
    ArchiveSet, ArrayState, BackendTopology, FaultPlan, FaultStats, PowerLossReport, SsdDevice,
    LBA_SIZE,
};
use hams_interconnect::{
    BusMaster, CxlConfig, CxlLink, Ddr4Channel, Ddr4Config, LockRegister, PcieConfig, PcieLink,
    RegisterInterface, RegisterInterfaceConfig,
};
use hams_nvdimm::{Nvdimm, PinnedRegion};
use hams_nvme::NvmeCommand;
use hams_sim::{scoped_partition_map, ComponentId, LatencyVector, Nanos};
use hams_telemetry::{Layer, Span, TelemetrySink, TraceSink};
use serde::{Deserialize, Serialize};

use crate::config::{AttachMode, HamsConfig, PersistMode};
use crate::engine::NvmeEngine;
use crate::prp_pool::PrpPool;
use crate::tag_array::{BankPlanner, ShardConfig, ShardedTagArray, TagProbe};

/// The result of one MoS access.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MosAccessResult {
    /// Simulated time at which the access completed and the MMU can retry the
    /// stalled instruction.
    pub finished_at: Nanos,
    /// Whether the access hit in the NVDIMM cache.
    pub hit: bool,
    /// Latency components of this access: `nvdimm`, `dma`, `ssd`, `hams`.
    pub breakdown: LatencyVector,
}

impl MosAccessResult {
    /// Latency relative to the request time.
    #[must_use]
    pub fn latency(&self, issued_at: Nanos) -> Nanos {
        self.finished_at - issued_at
    }
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HamsStats {
    /// Device and interface time spent on background (non-blocking) eviction
    /// work in extend mode. Kept separate from `delay`, which only counts
    /// time on the access critical path.
    pub background_delay: LatencyVector,
    /// Total MoS accesses served.
    pub accesses: u64,
    /// NVDIMM cache hits.
    pub hits: u64,
    /// NVDIMM cache misses.
    pub misses: u64,
    /// Dirty evictions written to ULL-Flash.
    pub evictions: u64,
    /// Clean replacements (no write-back needed).
    pub clean_replacements: u64,
    /// Accesses that stalled in the wait queue behind a busy entry.
    pub wait_stalls: u64,
    /// Bytes moved from ULL-Flash into NVDIMM (fills).
    pub fill_bytes: u64,
    /// Bytes moved from NVDIMM to ULL-Flash (evictions).
    pub eviction_bytes: u64,
    /// Accumulated memory-delay components across all accesses
    /// (`nvdimm`, `dma`, `ssd`, `hams`) — the series of Fig. 18.
    pub delay: LatencyVector,
}

impl HamsStats {
    /// NVDIMM cache hit rate in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Reusable scratch for [`HamsController::plan_batch`]: the per-bank routing
/// tables and the planned classification of every access in a batch, indexed
/// by original batch position. Owned by the caller so the serving hot path
/// reuses the buffers batch after batch instead of allocating.
#[derive(Debug, Default)]
pub struct CellPlan {
    /// Per original batch position, the planned classification.
    planned: Vec<TagProbe>,
    /// Per bank: `(original index, page, is_write)` in original batch order.
    bank_inputs: Vec<Vec<(u32, u64, bool)>>,
    /// Per bank: classifications parallel to `bank_inputs`.
    bank_outputs: Vec<Vec<TagProbe>>,
}

impl CellPlan {
    /// An empty plan; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The planned classification of the `k`-th access of the batch.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range of the last planned batch.
    #[must_use]
    pub fn planned(&self, k: usize) -> TagProbe {
        self.planned[k]
    }

    /// Number of accesses covered by the last planned batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.planned.len()
    }

    /// Whether no batch has been planned (or the last batch was empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.planned.is_empty()
    }
}

/// What a power failure found in flight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerFailureEvent {
    /// Time the NVDIMM supercapacitor backup takes.
    pub nvdimm_backup: Nanos,
    /// What happened inside the SSD (super-capacitor flush or data loss).
    pub ssd: PowerLossReport,
    /// Number of journal-tagged NVMe commands that had not completed.
    pub incomplete_commands: usize,
}

/// The outcome of the recovery procedure after power returns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// MoS pages whose in-flight commands were re-issued and completed.
    pub reissued_pages: Vec<u64>,
    /// Time at which recovery (NVDIMM restore plus re-issued I/O) finished.
    pub completed_at: Nanos,
}

/// The HAMS controller.
///
/// # Example
///
/// ```
/// use hams_core::{AttachMode, HamsConfig, HamsController, PersistMode};
/// use hams_sim::Nanos;
///
/// let cfg = HamsConfig::tiny_for_tests(AttachMode::Tight, PersistMode::Extend);
/// let mut hams = HamsController::new(cfg);
/// let miss = hams.access(0, false, 64, Nanos::ZERO);
/// let hit = hams.access(64, false, 64, miss.finished_at);
/// assert!(!miss.hit);
/// assert!(hit.hit);
/// assert_eq!(hams.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct HamsController {
    config: HamsConfig,
    tags: ShardedTagArray,
    nvdimm: Nvdimm,
    pinned: PinnedRegion,
    archive: ArchiveSet,
    ddr: Ddr4Channel,
    pcie: PcieLink,
    cxl: CxlLink,
    reg_iface: RegisterInterface,
    lock: LockRegister,
    engine: NvmeEngine,
    prp_pool: PrpPool,
    /// Completion time of the most recent SSD command; persist mode forbids a
    /// new command before this.
    persist_gate: Nanos,
    stats: HamsStats,
    /// Reused drain buffer for [`NvmeEngine::retire_due_into`]: the retire
    /// scan runs once or twice per access, so the hot path never allocates
    /// a fresh page list.
    retire_scratch: Vec<u64>,
    /// Reused buffers for the multi-stripe fill path (one fill per miss):
    /// stripe LBA ranges, issued segment descriptors, per-stripe completion
    /// times, and coalesced MSI delivery times.
    fill_ranges: Vec<(u64, u64)>,
    fill_segments: Vec<(u16, u64, u64)>,
    fill_completions: Vec<Nanos>,
    fill_delivered: Vec<Nanos>,
    /// Telemetry sink for simulated-time spans. [`TelemetrySink::Noop`] by
    /// default: the hot path pays one tag test and never builds a span.
    /// Tracing is observation-only — spans record already-computed
    /// timestamps, so enabling the sink cannot change simulated metrics
    /// (`tests/telemetry_equivalence.rs`).
    trace: TelemetrySink,
}

impl HamsController {
    /// Builds a controller from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the NVDIMM is too small to host the pinned region plus at
    /// least one MoS page.
    #[must_use]
    pub fn new(config: HamsConfig) -> Self {
        let nvdimm = Nvdimm::new(config.nvdimm);
        let pinned = PinnedRegion::at_top_of(nvdimm.capacity_bytes(), config.pinned);
        let num_sets = (pinned.cacheable_bytes() / config.mos_page_size) as usize;
        assert!(num_sets > 0, "NVDIMM too small for even one MoS page");
        let prp_slots = (pinned.layout().prp_pool_slots(config.mos_page_size) as usize).max(1);
        let archive = ArchiveSet::new(config.ssd, config.backend, config.mos_page_size);
        let engine = NvmeEngine::with_backend(
            config.queues,
            config.shards,
            num_sets as u64,
            archive.num_devices(),
            archive.stripe_lbas(),
        );
        HamsController {
            tags: ShardedTagArray::with_config(num_sets, config.shards),
            archive,
            ddr: Ddr4Channel::new(Ddr4Config::ddr4_2666()),
            pcie: PcieLink::new(PcieConfig::gen3_x4()),
            cxl: CxlLink::new(CxlConfig::cxl_x4()),
            reg_iface: RegisterInterface::new(RegisterInterfaceConfig::ddr4_2666()),
            lock: LockRegister::new(),
            engine,
            prp_pool: PrpPool::new(prp_slots),
            persist_gate: Nanos::ZERO,
            stats: HamsStats::default(),
            retire_scratch: Vec::new(),
            fill_ranges: Vec::new(),
            fill_segments: Vec::new(),
            fill_completions: Vec::new(),
            fill_delivered: Vec::new(),
            trace: TelemetrySink::disabled(),
            nvdimm,
            pinned,
            config,
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &HamsConfig {
        &self.config
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> &HamsStats {
        &self.stats
    }

    /// Total byte-addressable MoS capacity exposed to the MMU (the exported
    /// capacity of the archive set's unified address space).
    #[must_use]
    pub fn mos_capacity_bytes(&self) -> u64 {
        self.archive.capacity_bytes()
    }

    /// Number of NVDIMM cache sets (MoS pages resident simultaneously).
    #[must_use]
    pub fn cache_sets(&self) -> usize {
        self.tags.num_sets()
    }

    /// Number of independent tag-directory banks.
    #[must_use]
    pub fn num_shards(&self) -> u16 {
        self.tags.num_shards()
    }

    /// The tag-directory shard shape in force.
    #[must_use]
    pub fn shard_config(&self) -> ShardConfig {
        self.tags.shard_config()
    }

    /// The tag-directory bank owning the set that MoS page `page` maps to.
    #[must_use]
    pub fn shard_of_page(&self, page: u64) -> u16 {
        self.tags.shard_of_page(page)
    }

    /// The MoS page number containing a byte address.
    #[must_use]
    pub fn page_of(&self, addr: u64) -> u64 {
        addr / self.config.mos_page_size
    }

    /// Read access to the primary SSD model — the whole backend under
    /// [`BackendTopology::single`]. Multi-device accounting goes through
    /// [`Self::archive`].
    #[must_use]
    pub fn ssd(&self) -> &SsdDevice {
        self.archive.primary()
    }

    /// Read access to the archive set backing the MoS address space.
    #[must_use]
    pub fn archive(&self) -> &ArchiveSet {
        &self.archive
    }

    /// The archive backend topology in force (stripe unit resolved).
    #[must_use]
    pub fn backend_topology(&self) -> BackendTopology {
        self.archive.topology()
    }

    /// Number of devices in the archive set.
    #[must_use]
    pub fn num_devices(&self) -> u16 {
        self.archive.num_devices()
    }

    /// The archive-set device owning MoS page `page`'s first stripe. With
    /// the default MoS-page stripe granularity the whole page lives there,
    /// mirroring how its directory state lives in one tag-array bank.
    #[must_use]
    pub fn device_of_page(&self, page: u64) -> u16 {
        self.archive.device_of_slba(self.slba_of(page))
    }

    /// Read access to the NVDIMM model.
    #[must_use]
    pub fn nvdimm(&self) -> &Nvdimm {
        &self.nvdimm
    }

    /// Serves one MoS access of `size` bytes at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` lies beyond the MoS capacity.
    pub fn access(&mut self, addr: u64, is_write: bool, size: u64, now: Nanos) -> MosAccessResult {
        let mut breakdown = LatencyVector::new();
        let (finished_at, hit) = self.access_into(addr, is_write, size, now, &mut breakdown);
        self.stats.delay.merge(&breakdown);
        MosAccessResult {
            finished_at,
            hit,
            breakdown,
        }
    }

    /// [`Self::access`] for batch serving: the critical-path delay breakdown
    /// accumulates into the caller-owned `breakdown` instead of a fresh
    /// per-access map, and the caller folds it into the controller's
    /// aggregate stats once per batch via [`Self::merge_delay`]. Simulated
    /// timing is identical to [`Self::access`]; only the host-side
    /// bookkeeping (one breakdown map per batch rather than two per access)
    /// is amortized. Returns `(finished_at, hit)`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` lies beyond the MoS capacity.
    pub fn access_into(
        &mut self,
        addr: u64,
        is_write: bool,
        size: u64,
        now: Nanos,
        breakdown: &mut LatencyVector,
    ) -> (Nanos, bool) {
        assert!(
            addr < self.mos_capacity_bytes(),
            "MoS address {addr:#x} beyond capacity"
        );
        let page = self.page_of(addr);
        let traced = self.trace.is_enabled();
        let mut t = now + self.config.controller_overhead;
        breakdown.add(ComponentId::HAMS, self.config.controller_overhead);

        // Retire anything whose device service has completed.
        self.engine.retire_due_into(t, &mut self.retire_scratch);

        // Tag lookup: a tCL plus a few tBURSTs out of the NVDIMM (<20 ns).
        let tag_read = Nanos::from_nanos(15);
        breakdown.add(ComponentId::NVDIMM, tag_read);
        let tag_read_at = t;
        t += tag_read;

        // Wait-queue: if the target set has an in-flight fill or eviction,
        // the request parks until the busy bit clears (§V-B, Fig. 14).
        let mut waited: Option<(Nanos, Nanos)> = None;
        if let Some(free_at) = self.tags.busy_until(page, t) {
            self.stats.wait_stalls += 1;
            breakdown.add(ComponentId::HAMS, free_at - t);
            if traced {
                waited = Some((t, free_at));
            }
            t = free_at;
            self.engine.retire_due_into(t, &mut self.retire_scratch);
        }

        let probe = self.tags.probe(page);
        self.stats.accesses += 1;
        let hit = matches!(probe, TagProbe::Hit);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }

        match probe {
            TagProbe::Hit => {}
            TagProbe::MissEmpty => {
                t = self.fill(page, is_write, t, breakdown);
            }
            TagProbe::MissClean { .. } => {
                self.stats.clean_replacements += 1;
                t = self.fill(page, is_write, t, breakdown);
            }
            TagProbe::MissDirty { victim_page } => {
                let (slot_free_at, eviction_done) = self.evict(victim_page, t, breakdown);
                let fill_start = match self.config.persist {
                    // Persist mode: only one command in flight, so the fill
                    // waits for the eviction to reach the flash.
                    PersistMode::Persist => eviction_done,
                    // Extend mode: the fill may start as soon as the victim's
                    // data is safe in the PRP-pool clone.
                    PersistMode::Extend => slot_free_at,
                };
                t = self.fill(page, is_write, fill_start, breakdown);
            }
        }

        // Serve the CPU-visible access from NVDIMM.
        let ddr_t = self.ddr.transfer(size, t);
        let array = if is_write {
            self.nvdimm.write(size)
        } else {
            self.nvdimm.read(size)
        };
        breakdown.add(ComponentId::NVDIMM, ddr_t.latency() + array);
        t = ddr_t.finished_at + array;

        if is_write {
            self.tags.mark_dirty(page);
        }

        if traced {
            self.trace_access_spans("access", page, hit, now, t, tag_read_at, tag_read, waited);
        }

        (t, hit)
    }

    /// Emits the controller-level spans of one access: the enclosing
    /// controller span, the tag-directory probe and any wait-queue stall.
    /// Called only when tracing is on; every argument is a timestamp the
    /// access already computed.
    #[allow(clippy::too_many_arguments)]
    fn trace_access_spans(
        &mut self,
        name: &'static str,
        page: u64,
        hit: bool,
        started: Nanos,
        finished: Nanos,
        tag_read_at: Nanos,
        tag_read: Nanos,
        waited: Option<(Nanos, Nanos)>,
    ) {
        let shard = self.tags.shard_of_page(page);
        self.trace.record(
            Span::new(Layer::Controller, name, started, finished)
                .with_shard(shard)
                .with_request(page),
        );
        self.trace.record(
            Span::new(
                Layer::TagArray,
                if hit { "tag_hit" } else { "tag_miss" },
                tag_read_at,
                tag_read_at + tag_read,
            )
            .with_shard(shard)
            .with_request(page),
        );
        if let Some((from, until)) = waited {
            self.trace.record(
                Span::new(Layer::TagArray, "wait_stall", from, until)
                    .with_shard(shard)
                    .with_request(page),
            );
        }
    }

    /// Folds a batch-accumulated delay breakdown into the controller's
    /// aggregate [`HamsStats::delay`]; the batch-serving counterpart of the
    /// per-access merge [`Self::access`] performs.
    pub fn merge_delay(&mut self, breakdown: &LatencyVector) {
        self.stats.delay.merge(breakdown);
    }

    /// Plan phase of cell-parallel batch serving: classifies every access of
    /// a batch against the directory, serving each bank's sub-batch on its
    /// own scoped worker (`workers` as in
    /// [`hams_sim::scoped_partition_map`]; `0` means the `HAMS_CELL_THREADS`
    /// default). Classification is a pure function of the access sequence —
    /// never of simulated time — so banks plan concurrently with no shared
    /// state; see [`BankPlanner`] for the field discipline. The results land
    /// in `plan`, indexed by original batch position, for the serial
    /// [`Self::commit_planned_into`] replay.
    pub fn plan_batch(&mut self, accesses: &[(u64, bool)], workers: usize, plan: &mut CellPlan) {
        let banks = usize::from(self.tags.num_shards());
        plan.bank_inputs.resize_with(banks, Vec::new);
        plan.bank_outputs.resize_with(banks, Vec::new);
        for input in &mut plan.bank_inputs {
            input.clear();
        }
        for (i, &(addr, is_write)) in accesses.iter().enumerate() {
            let page = self.page_of(addr);
            let bank = usize::from(self.tags.shard_of_page(page));
            plan.bank_inputs[bank].push((i as u32, page, is_write));
        }

        struct BankTask<'a> {
            planner: BankPlanner<'a>,
            input: &'a [(u32, u64, bool)],
            output: &'a mut Vec<TagProbe>,
        }
        let mut tasks: Vec<BankTask> = self
            .tags
            .bank_planners()
            .into_iter()
            .zip(plan.bank_inputs.iter().zip(plan.bank_outputs.iter_mut()))
            .map(|(planner, (input, output))| BankTask {
                planner,
                input,
                output,
            })
            .collect();
        scoped_partition_map(&mut tasks, workers, |_, task| {
            task.output.clear();
            for &(_, page, is_write) in task.input {
                task.output.push(task.planner.plan_access(page, is_write));
            }
        });

        // Scatter the per-bank results back to original batch order.
        plan.planned.clear();
        plan.planned.resize(accesses.len(), TagProbe::Hit);
        for (input, output) in plan.bank_inputs.iter().zip(plan.bank_outputs.iter()) {
            for (&(i, _, _), &probe) in input.iter().zip(output.iter()) {
                plan.planned[i as usize] = probe;
            }
        }
    }

    /// Commit phase of cell-parallel batch serving: replays the timing of
    /// one access whose classification `planned` was produced by
    /// [`Self::plan_batch`]. Must be called for every access of the batch in
    /// original batch order. Byte-identical to [`Self::access_into`]: the
    /// probe, tag install and dirty marking already happened at plan time,
    /// and every timing decision — retires, the wait queue, fills,
    /// evictions, the persist gate — runs here, serially, exactly as the
    /// serial path runs it. Returns `(finished_at, hit)`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` lies beyond the MoS capacity.
    pub fn commit_planned_into(
        &mut self,
        addr: u64,
        is_write: bool,
        size: u64,
        planned: TagProbe,
        now: Nanos,
        breakdown: &mut LatencyVector,
    ) -> (Nanos, bool) {
        assert!(
            addr < self.mos_capacity_bytes(),
            "MoS address {addr:#x} beyond capacity"
        );
        let page = self.page_of(addr);
        let traced = self.trace.is_enabled();
        let mut t = now + self.config.controller_overhead;
        breakdown.add(ComponentId::HAMS, self.config.controller_overhead);

        self.engine.retire_due_into(t, &mut self.retire_scratch);

        let tag_read = Nanos::from_nanos(15);
        breakdown.add(ComponentId::NVDIMM, tag_read);
        let tag_read_at = t;
        t += tag_read;

        let mut waited: Option<(Nanos, Nanos)> = None;
        if let Some(free_at) = self.tags.busy_until(page, t) {
            self.stats.wait_stalls += 1;
            breakdown.add(ComponentId::HAMS, free_at - t);
            if traced {
                waited = Some((t, free_at));
            }
            t = free_at;
            self.engine.retire_due_into(t, &mut self.retire_scratch);
        }

        self.stats.accesses += 1;
        let hit = matches!(planned, TagProbe::Hit);
        if hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }

        match planned {
            TagProbe::Hit => {}
            TagProbe::MissEmpty => {
                t = self.commit_fill(page, is_write, t, breakdown);
            }
            TagProbe::MissClean { .. } => {
                self.stats.clean_replacements += 1;
                t = self.commit_fill(page, is_write, t, breakdown);
            }
            TagProbe::MissDirty { victim_page } => {
                let (slot_free_at, eviction_done) = self.evict(victim_page, t, breakdown);
                let fill_start = match self.config.persist {
                    PersistMode::Persist => eviction_done,
                    PersistMode::Extend => slot_free_at,
                };
                t = self.commit_fill(page, is_write, fill_start, breakdown);
            }
        }

        let ddr_t = self.ddr.transfer(size, t);
        let array = if is_write {
            self.nvdimm.write(size)
        } else {
            self.nvdimm.read(size)
        };
        breakdown.add(ComponentId::NVDIMM, ddr_t.latency() + array);
        t = ddr_t.finished_at + array;

        // The dirty marking already happened at plan time.
        if traced {
            self.trace_access_spans("commit", page, hit, now, t, tag_read_at, tag_read, waited);
        }

        (t, hit)
    }

    /// The commit-phase fill: timing via [`Self::fill_inner`], then the busy
    /// hand-off alone — the tag install happened at plan time.
    fn commit_fill(
        &mut self,
        page: u64,
        is_write: bool,
        now: Nanos,
        breakdown: &mut LatencyVector,
    ) -> Nanos {
        let data_ready = self.fill_inner(page, is_write, now, breakdown);
        self.tags.force_busy(page, data_ready);
        data_ready
    }

    /// Reconfigures the NVMe submission path (queue count, ring depth, MSI
    /// coalescing). Meant to be called before traffic is served: the engine
    /// is rebuilt, so any in-flight journal state is discarded.
    /// [`hams_nvme::QueueConfig::single`] restores the original single-queue
    /// behaviour exactly.
    pub fn set_queue_config(&mut self, queues: hams_nvme::QueueConfig) {
        self.config.queues = queues;
        self.engine = self.rebuild_engine();
    }

    /// An engine for the current queue/shard/backend configuration.
    fn rebuild_engine(&self) -> NvmeEngine {
        NvmeEngine::with_backend(
            self.config.queues,
            self.config.shards,
            self.tags.num_sets() as u64,
            self.archive.num_devices(),
            self.archive.stripe_lbas(),
        )
    }

    /// Repartitions the MoS tag directory into the banks described by
    /// `shards`. Meant to be called before traffic is served: the directory
    /// and the engine are rebuilt cold, so cached pages and in-flight journal
    /// state are discarded. By the shard-invariance contract the shape can
    /// never change metrics — [`ShardConfig::single`] is the original
    /// monolithic array, and every other shape is byte-identical to it
    /// (`tests/shard_equivalence.rs` pins this for every platform).
    pub fn set_shard_config(&mut self, shards: ShardConfig) {
        self.config.shards = shards;
        let num_sets = self.tags.num_sets();
        self.tags = ShardedTagArray::with_config(num_sets, shards);
        self.engine = self.rebuild_engine();
    }

    /// Re-shapes the archive backend into the set described by `topology`.
    /// Meant to be called before traffic is served: the archive set, the
    /// interconnect links and the engine are rebuilt cold, so flash state
    /// and in-flight journal state are discarded.
    /// [`BackendTopology::single`] restores the original single-archive
    /// engine byte for byte (`tests/backend_equivalence.rs` pins this for
    /// every platform); multi-device shapes legitimately change timing.
    pub fn set_backend_topology(&mut self, topology: BackendTopology) {
        self.config.backend = topology;
        self.archive = ArchiveSet::new(self.config.ssd, topology, self.config.mos_page_size);
        // The interconnects are rebuilt too: a re-shaped backend changes
        // which links the data path crosses, and a genuinely cold rebuild
        // must not inherit the previous topology's FCFS reservations.
        self.ddr = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        self.pcie = PcieLink::new(PcieConfig::gen3_x4());
        self.cxl = CxlLink::new(CxlConfig::cxl_x4());
        self.reg_iface = RegisterInterface::new(RegisterInterfaceConfig::ddr4_2666());
        self.engine = self.rebuild_engine();
    }

    /// Read access to the in-controller NVMe engine (queue shape, journal
    /// and MSI-coalescing counters).
    #[must_use]
    pub fn engine(&self) -> &NvmeEngine {
        &self.engine
    }

    /// Installs a fault plan on the archive set (see
    /// [`hams_flash::fault`]). The plan's state machine advances on the
    /// simulated clock of the serial archive command stream, so fault
    /// timing is deterministic for a given workload whatever the host
    /// thread count. Requires the parity backend
    /// ([`BackendTopology::Raid5`]); install it *after* any
    /// [`Self::set_backend_topology`] call, which rebuilds the archive
    /// cold.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.archive.set_fault_plan(plan);
    }

    /// Current degraded-state-machine state of the archive set
    /// (`Healthy` when no fault plan is installed).
    #[must_use]
    pub fn array_state(&self) -> ArrayState {
        self.archive.array_state()
    }

    /// Fault / reconstruction / rebuild accounting, if a fault plan is
    /// installed.
    #[must_use]
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        self.archive.fault_stats()
    }

    /// Advances the fault state machine to `now` without serving traffic —
    /// how a harness lets a pending rebuild finish after the last
    /// foreground access — and exports any completed rebuild rows as
    /// archive-layer trace spans. A no-op without a plan.
    pub fn advance_faults(&mut self, now: Nanos) {
        self.archive.advance_faults(now);
        self.flush_rebuild_trace();
    }

    /// Moves completed rebuild rows out of the archive set and into the
    /// trace sink as `Layer::Archive` "rebuild_row" spans (tagged with the
    /// rebuilt device and row). Rebuild is archive-internal background
    /// traffic, so its spans surface at drain points rather than inline on
    /// the foreground hot path; with tracing off the rows are discarded.
    fn flush_rebuild_trace(&mut self) {
        if self.archive.fault().is_none() {
            return;
        }
        let spans = self.archive.drain_rebuild_spans();
        if !self.trace.is_enabled() {
            return;
        }
        for row in spans {
            self.trace.record(
                Span::new(Layer::Archive, "rebuild_row", row.start, row.end)
                    .with_device(row.device)
                    .with_request(row.row),
            );
        }
    }

    /// Installs a telemetry sink. [`TelemetrySink::disabled`] restores the
    /// default no-op sink. Tracing is observation-only: spans record
    /// already-computed simulated timestamps and never feed back into
    /// timing, so metrics are byte-identical with any sink installed.
    pub fn set_trace_sink(&mut self, sink: TelemetrySink) {
        self.trace = sink;
    }

    /// Whether a recording sink is installed.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_enabled()
    }

    /// The installed sink's recorder, when tracing is on.
    #[must_use]
    pub fn trace_recorder(&self) -> Option<&hams_telemetry::SpanRecorder> {
        self.trace.recorder()
    }

    /// Moves the spans retained by the installed sink into `out`
    /// (appending), including any pending rebuild-row spans. No-op with the
    /// default [`TelemetrySink::Noop`].
    pub fn take_trace_spans(&mut self, out: &mut Vec<Span>) {
        self.flush_rebuild_trace();
        self.trace.drain_into(out);
    }

    /// First LBA of a MoS page.
    fn slba_of(&self, page: u64) -> u64 {
        page * self.config.mos_page_size / LBA_SIZE
    }

    /// NVDIMM byte address of the cache set holding `page`.
    fn nvdimm_addr_of(&self, page: u64) -> u64 {
        self.tags.index_of(page) as u64 * self.config.mos_page_size
    }

    /// Moves a MoS page between the archive and NVDIMM over the configured
    /// interface. Returns `(finished_at, dma_time)`.
    fn transfer_page(&mut self, start: Nanos, breakdown: &mut LatencyVector) -> Nanos {
        let page_bytes = self.config.mos_page_size;
        if self.archive.topology().uses_cxl() {
            // CXL-attached backend: the page crosses the CXL link, then the
            // DDR4 channel into/out of the NVDIMM — the loose-attach shape
            // with the faster, flit-framed link in place of PCIe.
            let t = self.cxl.transfer(page_bytes, start);
            breakdown.add(ComponentId::DMA, t.latency());
            let d = self.ddr.transfer(page_bytes, t.finished_at);
            breakdown.add(ComponentId::DMA, d.latency());
            return d.finished_at;
        }
        match self.config.attach {
            AttachMode::Loose => {
                let t = self.pcie.transfer(page_bytes, start);
                breakdown.add(ComponentId::DMA, t.latency());
                // The page also crosses the DDR4 channel into/out of NVDIMM.
                let d = self.ddr.transfer(page_bytes, t.finished_at);
                breakdown.add(ComponentId::DMA, d.latency());
                d.finished_at
            }
            AttachMode::Tight => {
                // The NVMe controller takes the bus via the lock register and
                // DMAs directly against the NVDIMM over DDR4.
                let _ = self.lock.acquire(BusMaster::NvmeController);
                let d = self.ddr.transfer(page_bytes, start);
                breakdown.add(ComponentId::DMA, d.latency());
                let _ = self.lock.release(BusMaster::NvmeController);
                d.finished_at
            }
        }
    }

    /// Latency of submitting one NVMe command over the configured interface.
    fn submit_command(&mut self, start: Nanos, breakdown: &mut LatencyVector) -> Nanos {
        if self.archive.topology().uses_cxl() {
            // Doorbell and command fetch over CXL.io: cheaper than a PCIe
            // BAR write, dearer than the DDR4 register interface.
            let overhead = self.cxl.config().command_overhead;
            breakdown.add(ComponentId::DMA, overhead);
            return start + overhead;
        }
        match self.config.attach {
            AttachMode::Loose => {
                breakdown.add(ComponentId::DMA, self.config.pcie_command_overhead);
                start + self.config.pcie_command_overhead
            }
            AttachMode::Tight => {
                let t = self.reg_iface.send_command(&mut self.ddr, start);
                breakdown.add(ComponentId::DMA, t.latency());
                t.finished_at
            }
        }
    }

    /// Evicts a dirty victim page. Returns `(slot_free_at, eviction_done)`:
    /// the cache slot becomes reusable once the clone is in the PRP pool;
    /// the data is durable on flash at `eviction_done`.
    fn evict(
        &mut self,
        victim_page: u64,
        now: Nanos,
        breakdown: &mut LatencyVector,
    ) -> (Nanos, Nanos) {
        self.stats.evictions += 1;
        let page_bytes = self.config.mos_page_size;
        self.stats.eviction_bytes += page_bytes;

        // 1. Clone the victim into the PRP pool (read + write inside NVDIMM).
        //    This always blocks the access: the cache slot cannot be reused
        //    before the clone exists.
        let read = self.ddr.transfer(page_bytes, now);
        let write = self.ddr.transfer(page_bytes, read.finished_at);
        let array = self.nvdimm.read(page_bytes) + self.nvdimm.write(page_bytes);
        breakdown.add(
            ComponentId::NVDIMM,
            read.latency() + write.latency() + array,
        );
        let clone_done = write.finished_at + array;

        // The command submission, data transfer and flash program block the
        // access only in persist mode; in extend mode they proceed in the
        // background and are accounted separately.
        let blocking = matches!(self.config.persist, PersistMode::Persist);
        let mut eviction_breakdown = LatencyVector::new();

        // 2. Compose and submit the eviction command.
        let persist_start = match self.config.persist {
            PersistMode::Persist => clone_done.max(self.persist_gate),
            PersistMode::Extend => clone_done,
        };
        let submitted = self.submit_command(persist_start, &mut eviction_breakdown);

        // 3. Data moves from the clone to the device, then the device programs
        //    it (FUA in persist mode forces it to the Z-NAND immediately).
        let transferred = self.transfer_page(submitted, &mut eviction_breakdown);
        let fua = blocking;
        let cmd = NvmeCommand::write(
            1,
            self.slba_of(victim_page),
            page_bytes,
            hams_nvme::PrpList::for_transfer(0, page_bytes, 4096),
        )
        .with_fua(fua);
        let completion = self
            .archive
            .service(&cmd, transferred)
            .expect("eviction write within device capacity");
        eviction_breakdown.add(ComponentId::SSD, completion.finished_at - transferred);
        let eviction_done = completion.finished_at;
        if blocking {
            breakdown.merge(&eviction_breakdown);
        } else {
            self.stats.background_delay.merge(&eviction_breakdown);
        }

        if self.trace.is_enabled() {
            let queue = self.engine.queue_for_page(victim_page);
            let device = self.archive.device_of_slba(self.slba_of(victim_page));
            self.trace.record(
                Span::new(Layer::Nvme, "evict_submit", persist_start, submitted)
                    .with_queue(queue)
                    .with_device(device)
                    .with_request(victim_page),
            );
            self.trace.record(
                Span::new(Layer::Archive, "evict_write", transferred, eviction_done)
                    .with_queue(queue)
                    .with_device(device)
                    .with_request(victim_page),
            );
        }

        // 4. Track the command for journal-tag recovery, park the clone.
        let slot = self
            .prp_pool
            .allocate(victim_page, eviction_done, now)
            .unwrap_or(0);
        let nvdimm_clone_addr = self.pinned.prp_slot_address(
            slot as u64 % self.pinned.layout().prp_pool_slots(page_bytes).max(1),
            page_bytes,
        );
        let _ = self.engine.issue_write(
            victim_page,
            self.slba_of(victim_page),
            page_bytes,
            nvdimm_clone_addr,
            fua,
            eviction_done,
        );

        if matches!(self.config.persist, PersistMode::Persist) {
            self.persist_gate = self.persist_gate.max(eviction_done);
        }

        (clone_done, eviction_done)
    }

    /// Number of stripe commands a fill is split into: one per queue pair,
    /// bounded by the page's LBA count. Persist mode keeps at most one NVMe
    /// command outstanding (§IV-B), so it never stripes.
    fn fill_stripes(&self, page_bytes: u64) -> u64 {
        match self.config.persist {
            PersistMode::Persist => 1,
            PersistMode::Extend => u64::from(self.config.queues.num_queues)
                .min(page_bytes / LBA_SIZE)
                .max(1),
        }
    }

    /// Fills `page` into its NVDIMM set. A write to a page that has never
    /// reached flash skips the fetch (write-allocate without fetch). Returns
    /// the time the data is available in NVDIMM.
    ///
    /// With a multi-queue [`hams_nvme::QueueConfig`], the fill is striped
    /// into one read command per queue pair: the device services the stripes
    /// concurrently (its firmware walks each command's sub-requests
    /// independently) and the completion interrupts coalesce through the
    /// engine's MSI model, so the page is ready when the interrupt covering
    /// the last stripe arrives. [`hams_nvme::QueueConfig::single`] takes the
    /// original single-command path, byte for byte.
    fn fill(
        &mut self,
        page: u64,
        is_write: bool,
        now: Nanos,
        breakdown: &mut LatencyVector,
    ) -> Nanos {
        let data_ready = self.fill_inner(page, is_write, now, breakdown);
        self.tags.fill(page);
        self.tags.set_busy(page, data_ready);
        data_ready
    }

    /// Everything a fill does *except* the directory update: command
    /// submission, archive service, the page transfer into NVDIMM and the
    /// persist gate. The serial [`Self::fill`] follows this with the tag
    /// install plus a fresh busy window; the cell-parallel commit phase
    /// follows it with [`ShardedTagArray::force_busy`] alone, because the
    /// tag/valid/dirty transition already happened at plan time.
    fn fill_inner(
        &mut self,
        page: u64,
        is_write: bool,
        now: Nanos,
        breakdown: &mut LatencyVector,
    ) -> Nanos {
        let page_bytes = self.config.mos_page_size;
        let start = match self.config.persist {
            PersistMode::Persist => now.max(self.persist_gate),
            PersistMode::Extend => now,
        };

        let data_ready = if is_write && !self.page_durable_on_flash(page) {
            // Nothing to fetch: the page has never been written to flash, or
            // the access overwrites it entirely; claim the slot directly.
            start
        } else if self.fill_stripes(page_bytes) <= 1 {
            // The degenerate single-stripe path (single-LBA pages, a single
            // queue pair, or persist mode): no stripe bookkeeping at all —
            // the one command is composed once and journalled verbatim
            // ([`NvmeEngine::issue_read_tracked`]) instead of being
            // re-derived, PRP list and all, a second time for tracking.
            self.stats.fill_bytes += page_bytes;
            let submitted = self.submit_command(start, breakdown);
            let cmd = NvmeCommand::read(
                1,
                self.slba_of(page),
                page_bytes,
                hams_nvme::PrpList::for_transfer(self.nvdimm_addr_of(page), page_bytes, 4096),
            );
            let completion = self
                .archive
                .service(&cmd, submitted)
                .expect("fill read within device capacity");
            breakdown.add(ComponentId::SSD, completion.finished_at - submitted);
            if self.trace.is_enabled() {
                let queue = self.engine.queue_for_page(page);
                let device = self.archive.device_of_slba(self.slba_of(page));
                self.trace.record(
                    Span::new(Layer::Nvme, "fill_submit", start, submitted)
                        .with_queue(queue)
                        .with_device(device)
                        .with_request(page),
                );
                self.trace.record(
                    Span::new(
                        Layer::Archive,
                        "fill_read",
                        submitted,
                        completion.finished_at,
                    )
                    .with_queue(queue)
                    .with_device(device)
                    .with_request(page),
                );
            }
            let transferred = self.transfer_page(completion.finished_at, breakdown);
            // Landing the page in the NVDIMM array.
            let array = self.nvdimm.write(page_bytes);
            breakdown.add(ComponentId::NVDIMM, array);
            let _ = self
                .engine
                .issue_read_tracked(page, cmd, transferred + array);
            transferred + array
        } else {
            self.stats.fill_bytes += page_bytes;
            let stripes = self.fill_stripes(page_bytes);
            let base_slba = self.slba_of(page);
            let base_addr = self.nvdimm_addr_of(page);
            // One stripe command per queue pair over the page's LBA range.
            // The stripe bookkeeping runs in controller-owned scratch buffers
            // (one fill per miss makes this the hottest allocation site); the
            // buffers are taken out of `self` for the duration of the loop so
            // the iteration can borrow them alongside `&mut self` calls.
            let mut ranges = std::mem::take(&mut self.fill_ranges);
            let mut segments = std::mem::take(&mut self.fill_segments);
            let mut completions = std::mem::take(&mut self.fill_completions);
            let mut delivered = std::mem::take(&mut self.fill_delivered);
            hams_nvme::stripe_ranges_into(page_bytes / LBA_SIZE, stripes, &mut ranges);
            segments.clear();
            completions.clear();
            let mut submit_t = start;
            for (s, &(lba_offset, count)) in ranges.iter().enumerate() {
                let slba = base_slba + lba_offset;
                let length = count * LBA_SIZE;
                // Doorbell writes serialize over the command interface; each
                // stripe's service starts as soon as its own doorbell lands.
                let doorbell_at = submit_t;
                submit_t = self.submit_command(submit_t, breakdown);
                let cmd = NvmeCommand::read(
                    1,
                    slba,
                    length,
                    hams_nvme::PrpList::for_transfer(
                        base_addr + lba_offset * LBA_SIZE,
                        length,
                        4096,
                    ),
                );
                let completion = self
                    .archive
                    .service(&cmd, submit_t)
                    .expect("fill stripe within device capacity");
                completions.push(completion.finished_at);
                segments.push((s as u16, slba, length));
                if self.trace.is_enabled() {
                    let device = self.archive.device_of_slba(slba);
                    self.trace.record(
                        Span::new(Layer::Nvme, "fill_submit", doorbell_at, submit_t)
                            .with_queue(s as u16)
                            .with_device(device)
                            .with_request(page),
                    );
                    self.trace.record(
                        Span::new(
                            Layer::Archive,
                            "fill_read",
                            submit_t,
                            completion.finished_at,
                        )
                        .with_queue(s as u16)
                        .with_device(device)
                        .with_request(page),
                    );
                }
            }
            // The cache logic learns of the fill through the coalesced MSI
            // covering the last stripe completion.
            self.engine.deliver_times_into(&completions, &mut delivered);
            if self.trace.is_enabled() {
                // `delivered` is index-aligned with the *sorted* completion
                // times; sort a copy to pair each completion with its
                // coalesced interrupt (cold path, tracing only).
                let mut sorted = completions.clone();
                sorted.sort_unstable();
                for (&completed, &fired) in sorted.iter().zip(delivered.iter()) {
                    self.trace.record(
                        Span::new(Layer::Msi, "msi_delivery", completed, fired).with_request(page),
                    );
                }
            }
            let flash_ready = delivered.last().copied().unwrap_or(submit_t).max(submit_t);
            breakdown.add(ComponentId::SSD, flash_ready - submit_t);
            let transferred = self.transfer_page(flash_ready, breakdown);
            let array = self.nvdimm.write(page_bytes);
            breakdown.add(ComponentId::NVDIMM, array);
            for &(queue, slba, length) in &segments {
                let _ = self.engine.issue_read_on(
                    queue,
                    page,
                    slba,
                    length,
                    base_addr + (slba - base_slba) * LBA_SIZE,
                    transferred + array,
                );
            }
            self.fill_ranges = ranges;
            self.fill_segments = segments;
            self.fill_completions = completions;
            self.fill_delivered = delivered;
            transferred + array
        };

        if matches!(self.config.persist, PersistMode::Persist) {
            self.persist_gate = self.persist_gate.max(data_ready);
        }
        data_ready
    }

    /// Whether every flash page backing MoS page `page` is durably mapped on
    /// the device owning its stripe.
    #[must_use]
    pub fn page_durable_on_flash(&self, page: u64) -> bool {
        let flash_page = u64::from(self.config.ssd.geometry.page_size);
        let start = page * self.config.mos_page_size / flash_page;
        let count = (self.config.mos_page_size / flash_page).max(1);
        (start..start + count).all(|lpn| self.archive.is_durable(lpn))
    }

    /// Whether the latest data of MoS page `page` would survive a power
    /// failure right now: cached in the (non-volatile) NVDIMM, durable on
    /// flash, parked in the PRP pool, or recoverable through a journal-tagged
    /// in-flight command.
    #[must_use]
    pub fn is_page_recoverable(&self, page: u64, now: Nanos) -> bool {
        let cached = self
            .tags
            .resident_page(self.tags.index_of(page))
            .is_some_and(|p| p == page);
        cached
            || self.page_durable_on_flash(page)
            || self.prp_pool.holds_page(page)
            || self
                .engine
                .journaled_incomplete(now)
                .iter()
                .any(|t| t.mos_page == page)
    }

    /// Injects a power failure at `now`.
    pub fn power_fail(&mut self, now: Nanos) -> PowerFailureEvent {
        self.engine.retire_due_into(now, &mut self.retire_scratch);
        let incomplete = self.engine.journaled_incomplete(now).len();
        // Completions scheduled for after the failure died with the power;
        // without this, a later retire_due would post success CQ entries
        // (and count completions) for commands recovery re-issues.
        self.engine.drop_in_flight_completions();
        PowerFailureEvent {
            nvdimm_backup: self.nvdimm.power_fail(),
            ssd: self.archive.power_fail(now),
            incomplete_commands: incomplete,
        }
    }

    /// Runs the power-restoration procedure of §V-C: restore the NVDIMM, scan
    /// the pinned SQ region for journal-tagged commands, re-create a queue
    /// pair for them and re-issue them to ULL-Flash. Each journal tag
    /// carries the directory bank its page's set lives in
    /// ([`crate::TrackedCommand::shard`]); the replay clears the stale busy
    /// bit the dead operation left in that bank, so post-recovery accesses
    /// do not park behind a wait window that no completion will ever close.
    ///
    /// In a multi-device backend, each re-issued command routes through the
    /// archive set to the device owning its stripe — the same device the
    /// dead command was in flight to, which the journal tag records
    /// ([`crate::TrackedCommand::device`]).
    ///
    /// # Panics
    ///
    /// Panics if a journal tag's recorded bank no longer matches the live
    /// directory routing, or its recorded device no longer matches the live
    /// archive routing — the signature of a [`Self::set_shard_config`] /
    /// [`Self::set_backend_topology`] repartition racing in-flight journal
    /// state.
    pub fn recover(&mut self, now: Nanos) -> RecoveryReport {
        let restore_done = now + self.nvdimm.power_restore();
        let pending = self.engine.journaled_incomplete(now);
        let mut completed_at = restore_done;
        let mut reissued_pages = Vec::with_capacity(pending.len());
        let mut ids = Vec::with_capacity(pending.len());
        for tracked in &pending {
            // Recovery forces the re-issued request onto the flash medium so
            // the recovered data is durable even if the device has a volatile
            // buffer; the FUA override rides on the borrowed journal command
            // instead of cloning it (PRP list and all) to flip one bit.
            let command = &tracked.command;
            assert_eq!(
                tracked.device,
                self.archive.device_of_slba(command.slba),
                "journal tag for page {} recorded device {} but the archive \
                 routes its stripe to device {} — backend topology changed \
                 with commands in flight",
                tracked.mos_page,
                tracked.device,
                self.archive.device_of_slba(command.slba)
            );
            let completion = self
                .archive
                .service_fua(command, restore_done)
                .expect("re-issued command must fit the device");
            completed_at = completed_at.max(completion.finished_at);
            // The in-flight operation died with the power; drop the busy
            // window it left in the owning bank, after checking the journal's
            // recorded bank against the live routing.
            assert_eq!(
                tracked.shard,
                self.tags.shard_of_page(tracked.mos_page),
                "journal tag for page {} recorded bank {} but the directory \
                 routes it to bank {} — shard shape changed with commands in \
                 flight",
                tracked.mos_page,
                tracked.shard,
                self.tags.shard_of_page(tracked.mos_page)
            );
            self.tags.clear_busy(tracked.mos_page);
            reissued_pages.push(tracked.mos_page);
            ids.push(tracked.id);
        }
        self.engine.mark_recovered(&ids);
        reissued_pages.sort_unstable();
        reissued_pages.dedup();
        RecoveryReport {
            reissued_pages,
            completed_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(attach: AttachMode, persist: PersistMode) -> HamsController {
        HamsController::new(HamsConfig::tiny_for_tests(attach, persist))
    }

    #[test]
    fn hit_after_miss_and_hit_is_fast() {
        let mut h = controller(AttachMode::Loose, PersistMode::Extend);
        let miss = h.access(0, false, 64, Nanos::ZERO);
        assert!(!miss.hit);
        let hit = h.access(64, false, 64, miss.finished_at);
        assert!(hit.hit);
        assert!(hit.latency(miss.finished_at) < Nanos::from_micros(1));
        assert_eq!(h.stats().hits, 1);
        assert_eq!(h.stats().misses, 1);
    }

    #[test]
    fn writes_mark_pages_dirty_and_cause_evictions_on_conflict() {
        let mut h = controller(AttachMode::Loose, PersistMode::Extend);
        let sets = h.cache_sets() as u64;
        let page_size = h.config().mos_page_size;
        let mut t = Nanos::ZERO;
        // Dirty a page, then touch the page that maps to the same set.
        let r = h.access(0, true, 64, t);
        t = r.finished_at;
        let conflicting_addr = sets * page_size; // same set, different tag
        let r = h.access(conflicting_addr, true, 64, t);
        assert!(!r.hit);
        assert_eq!(h.stats().evictions, 1);
        assert!(h.stats().eviction_bytes >= page_size);
    }

    #[test]
    fn clean_conflicts_do_not_write_back() {
        let mut h = controller(AttachMode::Loose, PersistMode::Extend);
        let sets = h.cache_sets() as u64;
        let page_size = h.config().mos_page_size;
        let r = h.access(0, false, 64, Nanos::ZERO);
        let r2 = h.access(sets * page_size, false, 64, r.finished_at);
        assert!(!r2.hit);
        assert_eq!(h.stats().evictions, 0);
        assert_eq!(h.stats().clean_replacements, 1);
    }

    #[test]
    fn tight_attach_outruns_loose_attach_on_a_miss_heavy_sweep() {
        let mut loose = controller(AttachMode::Loose, PersistMode::Extend);
        let mut tight = controller(AttachMode::Tight, PersistMode::Extend);
        let finish = |h: &mut HamsController| {
            let page_size = h.config().mos_page_size;
            let span = h.cache_sets() as u64 + 64; // always misses after warm-up
            let mut t = Nanos::ZERO;
            for i in 0..300u64 {
                let addr = (i % span) * page_size;
                let r = h.access(addr, false, 64, t);
                t = r.finished_at;
            }
            t
        };
        let loose_finish = finish(&mut loose);
        let tight_finish = finish(&mut tight);
        assert!(
            tight_finish < loose_finish,
            "tight ({tight_finish}) should beat loose ({loose_finish}) when misses dominate"
        );
    }

    #[test]
    fn persist_mode_is_slower_than_extend_under_eviction_pressure() {
        let mut extend = controller(AttachMode::Loose, PersistMode::Extend);
        let mut persist = controller(AttachMode::Loose, PersistMode::Persist);
        let mut t_e = Nanos::ZERO;
        let mut t_p = Nanos::ZERO;
        let stride = extend.config().mos_page_size;
        let span = extend.cache_sets() as u64 * 2;
        for i in 0..span {
            let r = extend.access(i % span * stride, true, 64, t_e);
            t_e = r.finished_at;
            let r = persist.access(i % span * stride, true, 64, t_p);
            t_p = r.finished_at;
        }
        assert!(
            t_p > t_e,
            "persist ({t_p}) must be slower than extend ({t_e})"
        );
    }

    #[test]
    fn delay_breakdown_accumulates_expected_components() {
        let mut h = controller(AttachMode::Loose, PersistMode::Extend);
        let r = h.access(0, true, 64, Nanos::ZERO);
        let conflict = h.cache_sets() as u64 * h.config().mos_page_size;
        h.access(conflict, false, 64, r.finished_at);
        let d = &h.stats().delay;
        assert!(d.component("nvdimm") > Nanos::ZERO);
        assert!(d.component("dma") > Nanos::ZERO);
        assert!(d.component("ssd") > Nanos::ZERO);
    }

    #[test]
    fn wait_queue_stalls_on_busy_entry() {
        let mut h = controller(AttachMode::Loose, PersistMode::Extend);
        // Force a fill that leaves the entry busy, then immediately touch the
        // same page *before* the fill completes.
        let miss = h.access(0, true, 64, Nanos::ZERO);
        // Evict + refill to give the entry a long busy window.
        let conflict = h.cache_sets() as u64 * h.config().mos_page_size;
        let r = h.access(conflict, true, 64, miss.finished_at);
        // Touch the conflicting page again at a time before its fill is done.
        let early = r.finished_at - Nanos::from_nanos(1);
        let _ = h.access(conflict + 64, false, 64, early);
        // Either it hit (fill already visible) or it waited; both are legal,
        // but the wait-stall counter must never exceed total accesses.
        assert!(h.stats().wait_stalls <= h.stats().accesses);
    }

    #[test]
    fn acknowledged_writes_survive_power_failure_and_recovery() {
        let mut h = controller(AttachMode::Loose, PersistMode::Extend);
        let page_size = h.config().mos_page_size;
        let mut t = Nanos::ZERO;
        let mut written_pages = Vec::new();
        // Dirty more pages than the cache holds so evictions are in flight.
        for i in 0..(h.cache_sets() as u64 * 2) {
            let addr = i * page_size;
            let r = h.access(addr, true, 64, t);
            t = r.finished_at;
            written_pages.push(h.page_of(addr));
        }
        // Power fails "now" — possibly with eviction commands outstanding.
        let event = h.power_fail(t);
        assert!(event.nvdimm_backup > Nanos::ZERO);
        let report = h.recover(t);
        for page in written_pages {
            assert!(
                h.is_page_recoverable(page, report.completed_at),
                "page {page} lost across power failure"
            );
        }
    }

    #[test]
    fn recovery_reissues_journaled_commands() {
        let mut h = controller(AttachMode::Loose, PersistMode::Extend);
        let page_size = h.config().mos_page_size;
        let mut t = Nanos::ZERO;
        for i in 0..(h.cache_sets() as u64 + 4) {
            let r = h.access(i * page_size, true, 64, t);
            t = r.finished_at;
        }
        // Fail immediately after the last access: its eviction (if any) is in
        // flight. Recovery must re-issue exactly the journal-tagged commands.
        let before = h.engine_outstanding_for_tests();
        let event = h.power_fail(t);
        assert!(event.incomplete_commands <= before);
        let report = h.recover(t);
        assert!(report.reissued_pages.len() <= before);
        assert!(report.completed_at >= t);
    }

    #[test]
    #[should_panic(expected = "beyond capacity")]
    fn out_of_range_access_panics() {
        let mut h = controller(AttachMode::Loose, PersistMode::Extend);
        let far = h.mos_capacity_bytes();
        let _ = h.access(far, false, 64, Nanos::ZERO);
    }

    #[test]
    fn striped_fills_beat_the_single_queue_on_multi_lba_pages() {
        use hams_nvme::QueueConfig;
        let base = HamsConfig::tiny_for_tests(AttachMode::Loose, PersistMode::Extend)
            .with_mos_page_size(64 * 1024);
        let mut single = HamsController::new(base);
        let mut striped = HamsController::new(base.with_queues(QueueConfig::striped(4)));
        assert_eq!(striped.engine().num_queues(), 4);
        let page = base.mos_page_size;
        let mut t_single = Nanos::ZERO;
        let mut t_striped = Nanos::ZERO;
        // A cold read stream: every access misses and pays a full page fill.
        // First write the pages so the fills actually touch flash.
        for i in 0..64u64 {
            t_single = single.access(i * page, true, 64, t_single).finished_at;
            t_striped = striped.access(i * page, true, 64, t_striped).finished_at;
        }
        let span = single.cache_sets() as u64 + 8;
        for i in 0..200u64 {
            let addr = (i % span) * page;
            t_single = single.access(addr, false, 64, t_single).finished_at;
            t_striped = striped.access(addr, false, 64, t_striped).finished_at;
        }
        assert!(
            t_striped < t_single,
            "4-queue striped fills ({t_striped}) must beat single queue ({t_single})"
        );
        assert!(
            striped.engine().coalescer_stats().interrupts
                < striped.engine().coalescer_stats().completions,
            "stripe completions should coalesce into fewer interrupts"
        );
    }

    #[test]
    fn persist_mode_never_stripes_fills() {
        use hams_nvme::QueueConfig;
        let config = HamsConfig::tiny_for_tests(AttachMode::Loose, PersistMode::Persist)
            .with_mos_page_size(64 * 1024)
            .with_queues(QueueConfig::striped(4));
        let h = HamsController::new(config);
        assert_eq!(
            h.fill_stripes(config.mos_page_size),
            1,
            "persist mode keeps at most one command outstanding"
        );
    }

    #[test]
    fn single_queue_stripe_count_is_one_regardless_of_page_size() {
        let h = controller(AttachMode::Tight, PersistMode::Extend);
        assert_eq!(h.fill_stripes(4096), 1);
        assert_eq!(h.fill_stripes(128 * 1024), 1);
    }

    #[test]
    fn access_streams_are_byte_identical_across_shard_shapes() {
        use crate::tag_array::ShardConfig;
        let base = HamsConfig::tiny_for_tests(AttachMode::Loose, PersistMode::Extend);
        let stream = |h: &mut HamsController| {
            let page = h.config().mos_page_size;
            let span = h.cache_sets() as u64 + 16;
            let mut t = Nanos::ZERO;
            let mut results = Vec::new();
            for i in 0..400u64 {
                let addr = (i * 7 % span) * page + (i % 3) * 64;
                let r = h.access(addr, i % 4 == 0, 64, t);
                t = r.finished_at;
                results.push(r);
            }
            results
        };
        let mut reference = HamsController::new(base);
        let expected = stream(&mut reference);
        for shards in [
            ShardConfig::interleaved(2),
            ShardConfig::interleaved(8),
            ShardConfig::blocked(3),
        ] {
            let mut sharded = HamsController::new(base.with_shards(shards));
            assert_eq!(sharded.num_shards(), shards.count);
            let got = stream(&mut sharded);
            assert_eq!(got, expected, "{shards:?} diverged from single shard");
            assert_eq!(
                sharded.stats(),
                reference.stats(),
                "{shards:?} stats drifted"
            );
        }
    }

    #[test]
    fn set_shard_config_rebuilds_cold_and_matches_a_fresh_controller() {
        use crate::tag_array::ShardConfig;
        let base = HamsConfig::tiny_for_tests(AttachMode::Tight, PersistMode::Extend);
        let mut reconfigured = HamsController::new(base);
        reconfigured.set_shard_config(ShardConfig::interleaved(4));
        assert_eq!(reconfigured.num_shards(), 4);
        assert_eq!(reconfigured.shard_config(), ShardConfig::interleaved(4));
        let mut fresh = HamsController::new(base.with_shards(ShardConfig::interleaved(4)));
        let mut t_a = Nanos::ZERO;
        let mut t_b = Nanos::ZERO;
        for i in 0..128u64 {
            let addr = i * 4096;
            let a = reconfigured.access(addr, i % 2 == 0, 64, t_a);
            let b = fresh.access(addr, i % 2 == 0, 64, t_b);
            assert_eq!(a, b);
            t_a = a.finished_at;
            t_b = b.finished_at;
        }
        assert_eq!(reconfigured.stats(), fresh.stats());
    }

    #[test]
    fn shard_of_page_routes_through_the_directory() {
        use crate::tag_array::ShardConfig;
        let base = HamsConfig::tiny_for_tests(AttachMode::Loose, PersistMode::Extend)
            .with_shards(ShardConfig::interleaved(4));
        let h = HamsController::new(base);
        let sets = h.cache_sets() as u64;
        assert_eq!(h.shard_of_page(0), 0);
        assert_eq!(h.shard_of_page(1), 1);
        assert_eq!(h.shard_of_page(sets), 0, "aliases share the set's bank");
        // The engine stamps the same routing onto journal tags.
        assert_eq!(h.engine().shard_for_page(5), h.shard_of_page(5));
    }

    #[test]
    fn single_backend_is_byte_identical_across_the_topology_enum() {
        let base = HamsConfig::tiny_for_tests(AttachMode::Loose, PersistMode::Extend);
        let stream = |h: &mut HamsController| {
            let page = h.config().mos_page_size;
            let span = h.cache_sets() as u64 + 24;
            let mut t = Nanos::ZERO;
            let mut results = Vec::new();
            for i in 0..300u64 {
                let r = h.access((i * 11 % span) * page, i % 3 == 0, 64, t);
                t = r.finished_at;
                results.push(r);
            }
            results
        };
        let mut single = HamsController::new(base);
        let mut raid1 = HamsController::new(base.with_backend(BackendTopology::raid0(1)));
        assert_eq!(raid1.num_devices(), 1);
        assert_eq!(stream(&mut single), stream(&mut raid1));
        assert_eq!(single.stats(), raid1.stats());
    }

    #[test]
    fn raid0_fans_striped_fills_across_devices_and_per_device_bytes_sum() {
        use hams_nvme::QueueConfig;
        // 64 KB pages, 4 queue stripes of 16 KB each, 16 KB RAID stripes:
        // every stripe command lands wholly on one of the four devices.
        let base = HamsConfig::tiny_for_tests(AttachMode::Loose, PersistMode::Extend)
            .with_mos_page_size(64 * 1024)
            .with_queues(QueueConfig::striped(4));
        let mut single = HamsController::new(base);
        let mut raid =
            HamsController::new(base.with_backend(BackendTopology::raid0_striped(4, 16 * 1024)));
        assert_eq!(raid.num_devices(), 4);
        assert_eq!(
            raid.mos_capacity_bytes(),
            single.mos_capacity_bytes(),
            "the unified address space is capacity-invariant"
        );
        let page = base.mos_page_size;
        let mut t_single = Nanos::ZERO;
        let mut t_raid = Nanos::ZERO;
        for i in 0..48u64 {
            t_single = single.access(i * page, true, 64, t_single).finished_at;
            t_raid = raid.access(i * page, true, 64, t_raid).finished_at;
        }
        let span = single.cache_sets() as u64 + 8;
        for i in 0..200u64 {
            let addr = (i % span) * page;
            t_single = single.access(addr, false, 64, t_single).finished_at;
            t_raid = raid.access(addr, false, 64, t_raid).finished_at;
        }
        assert!(
            t_raid < t_single,
            "4-device RAID-0 ({t_raid}) must beat the single archive ({t_single})"
        );
        // Same command stream, partitioned: per-device byte totals sum to
        // exactly what the single archive served.
        let raid_total = raid.archive().stats();
        let single_total = single.archive().stats();
        assert_eq!(raid_total.bytes_read, single_total.bytes_read);
        assert_eq!(raid_total.bytes_written, single_total.bytes_written);
        assert!(
            raid.archive()
                .device_stats()
                .iter()
                .filter(|s| s.bytes_read > 0)
                .count()
                > 1,
            "the fills should actually fan out across devices"
        );
        assert_eq!(single.stats().fill_bytes, raid.stats().fill_bytes);
        assert_eq!(single.stats().hits, raid.stats().hits);
    }

    #[test]
    fn cxl_attached_sits_between_loose_pcie_and_tight_ddr4() {
        let finish = |h: &mut HamsController| {
            let page_size = h.config().mos_page_size;
            let span = h.cache_sets() as u64 + 64;
            let mut t = Nanos::ZERO;
            for i in 0..300u64 {
                let r = h.access((i % span) * page_size, false, 64, t);
                t = r.finished_at;
            }
            t
        };
        let mut tight = controller(AttachMode::Tight, PersistMode::Extend);
        let mut loose = controller(AttachMode::Loose, PersistMode::Extend);
        let mut cxl = HamsController::new(
            HamsConfig::tiny_for_tests(AttachMode::Tight, PersistMode::Extend)
                .with_backend(BackendTopology::cxl(1, 0)),
        );
        assert!(cxl.backend_topology().uses_cxl());
        let t_tight = finish(&mut tight);
        let t_cxl = finish(&mut cxl);
        let t_loose = finish(&mut loose);
        assert!(
            t_tight < t_cxl && t_cxl < t_loose,
            "miss-heavy sweep must order tight ({t_tight}) < cxl ({t_cxl}) < loose ({t_loose})"
        );
    }

    #[test]
    fn set_backend_topology_rebuilds_cold_and_matches_a_fresh_controller() {
        let base = HamsConfig::tiny_for_tests(AttachMode::Tight, PersistMode::Extend);
        let topology = BackendTopology::raid0_striped(4, 4096);
        let mut reconfigured = HamsController::new(base);
        reconfigured.set_backend_topology(topology);
        assert_eq!(reconfigured.num_devices(), 4);
        let mut fresh = HamsController::new(base.with_backend(topology));
        let mut t_a = Nanos::ZERO;
        let mut t_b = Nanos::ZERO;
        for i in 0..128u64 {
            let addr = i * 4096;
            let a = reconfigured.access(addr, i % 2 == 0, 64, t_a);
            let b = fresh.access(addr, i % 2 == 0, 64, t_b);
            assert_eq!(a, b);
            t_a = a.finished_at;
            t_b = b.finished_at;
        }
        assert_eq!(reconfigured.stats(), fresh.stats());
    }

    #[test]
    fn device_routing_matches_between_controller_engine_and_archive() {
        let base = HamsConfig::tiny_for_tests(AttachMode::Loose, PersistMode::Extend)
            .with_backend(BackendTopology::raid0(4));
        let h = HamsController::new(base);
        // Page-granularity stripes (4 KB pages): page n → device n % 4.
        for page in 0..16u64 {
            assert_eq!(h.device_of_page(page), (page % 4) as u16);
            assert_eq!(
                h.engine().device_for_slba(h.slba_of(page)),
                h.device_of_page(page),
                "engine journal routing must mirror the archive"
            );
        }
    }

    #[test]
    fn hit_rate_reaches_high_values_for_small_working_sets() {
        let mut h = controller(AttachMode::Tight, PersistMode::Extend);
        let mut t = Nanos::ZERO;
        for i in 0..2_000u64 {
            let addr = (i % 8) * 64; // tiny working set inside one page
            let r = h.access(addr, i % 4 == 0, 64, t);
            t = r.finished_at;
        }
        assert!(h.stats().hit_rate() > 0.99);
    }

    impl HamsController {
        fn engine_outstanding_for_tests(&self) -> usize {
            self.engine.outstanding()
        }
    }
}
