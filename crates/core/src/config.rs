//! HAMS controller configuration: attach mode, persistence mode, MoS page
//! size and the component configurations the controller composes.

use hams_flash::{BackendTopology, SsdConfig};
use hams_nvdimm::{NvdimmConfig, PinnedRegionLayout};
use hams_nvme::QueueConfig;
use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

use crate::tag_array::ShardConfig;

/// How ULL-Flash is attached to the HAMS controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttachMode {
    /// Baseline HAMS (`hams-L`): ULL-Flash sits behind the PCIe root complex;
    /// every cache miss crosses PCIe 3.0 x4 and the SSD keeps its internal
    /// DRAM.
    Loose,
    /// Advanced HAMS (`hams-T`): the ULL-Flash NVMe controller is attached to
    /// the DDR4 bus through the register interface and lock register; the
    /// SSD-internal DRAM is removed.
    Tight,
}

/// How the MoS address space treats persistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PersistMode {
    /// Persist mode (`-P`): force-unit-access on every flash write and at most
    /// one outstanding NVMe command, trading throughput for the strongest
    /// write-through persistence.
    Persist,
    /// Extend mode (`-E`): full NVMe queue parallelism; persistency is
    /// guaranteed by NVDIMM non-volatility, SSD super-capacitors and the
    /// journal-tag recovery of §V-C.
    Extend,
}

/// Complete configuration of a HAMS controller instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HamsConfig {
    /// Flash attach mode (loose = baseline, tight = advanced).
    pub attach: AttachMode,
    /// Persistence mode.
    pub persist: PersistMode,
    /// MoS page size: the granularity of the NVDIMM cache and of data
    /// movement between NVDIMM and ULL-Flash. Table II uses 128 KB.
    pub mos_page_size: u64,
    /// NVDIMM module used as the inclusive cache.
    pub nvdimm: NvdimmConfig,
    /// ULL-Flash archive configuration (per device of the backend).
    pub ssd: SsdConfig,
    /// Shape of the archive backend: one device, a RAID-0 fan-out, or the
    /// CXL-attached variant. [`BackendTopology::single`] reproduces the
    /// original single-archive engine byte for byte
    /// (`tests/backend_equivalence.rs`); multi-device shapes stripe the
    /// unified LBA space across devices and legitimately change timing.
    pub backend: BackendTopology,
    /// Layout of the pinned, MMU-invisible metadata region.
    pub pinned: PinnedRegionLayout,
    /// Shape of the NVMe submission path managed by the in-controller
    /// engine: queue-pair count, per-ring depth and MSI coalescing.
    /// [`QueueConfig::single`] reproduces the original single-queue engine
    /// byte for byte; multi-queue shapes stripe fills across pairs (extend
    /// mode only — persist mode keeps at most one command outstanding).
    pub queues: QueueConfig,
    /// Shape of the MoS tag directory: how many independent banks the sets
    /// are partitioned into and the set→shard hash. Pure routing — by the
    /// shard-invariance contract any shape produces byte-identical metrics,
    /// and [`ShardConfig::single`] is the original monolithic array.
    pub shards: ShardConfig,
    /// Fixed latency of the HAMS cache-logic pipeline per request (tag
    /// compare, command composition).
    pub controller_overhead: Nanos,
    /// Latency of submitting one command over the loose path (doorbell write
    /// and BAR access across PCIe).
    pub pcie_command_overhead: Nanos,
}

impl HamsConfig {
    /// The paper's loosely-coupled configuration (`hams-L*`): 8 GB NVDIMM
    /// cache, 800 GB ULL-Flash with super-capacitors over PCIe 3.0 x4,
    /// 128 KB MoS pages.
    #[must_use]
    pub fn loose(persist: PersistMode) -> Self {
        HamsConfig {
            attach: AttachMode::Loose,
            persist,
            mos_page_size: 128 * 1024,
            nvdimm: NvdimmConfig::hpe_8gb(),
            ssd: SsdConfig::ull_flash_supercap(),
            pinned: PinnedRegionLayout::paper_default(),
            backend: BackendTopology::single(),
            queues: QueueConfig::single(),
            shards: ShardConfig::single(),
            controller_overhead: Nanos::from_nanos(20),
            pcie_command_overhead: Nanos::from_nanos(600),
        }
    }

    /// The paper's tightly-integrated configuration (`hams-T*`): the DRAM-less
    /// ULL-Flash on the DDR4 bus behind the register interface.
    #[must_use]
    pub fn tight(persist: PersistMode) -> Self {
        HamsConfig {
            attach: AttachMode::Tight,
            ssd: SsdConfig::ull_flash_without_dram(),
            ..Self::loose(persist)
        }
    }

    /// A scaled-down configuration for unit tests: an 8 MB NVDIMM cache in
    /// front of a ~2 GB flash archive with 4 KB MoS pages, so misses and
    /// evictions happen quickly.
    #[must_use]
    pub fn tiny_for_tests(attach: AttachMode, persist: PersistMode) -> Self {
        // A small-but-not-toy flash geometry: much larger than the NVDIMM so
        // set conflicts (and therefore evictions) actually occur.
        let geometry = hams_flash::FlashGeometry {
            channels: 4,
            packages_per_channel: 2,
            dies_per_package: 2,
            planes_per_die: 2,
            blocks_per_plane: 128,
            pages_per_block: 128,
            page_size: 4096,
        };
        let mut ssd = hams_flash::SsdConfig {
            geometry,
            ..hams_flash::SsdConfig::tiny_for_tests()
        };
        ssd.supercap_backed = true;
        if attach == AttachMode::Tight {
            ssd.dram_capacity_bytes = 0;
        }
        HamsConfig {
            attach,
            persist,
            mos_page_size: 4096,
            nvdimm: NvdimmConfig {
                capacity_bytes: 8 * 1024 * 1024,
                ..NvdimmConfig::tiny_for_tests()
            },
            ssd,
            pinned: PinnedRegionLayout::tiny_for_tests(),
            backend: BackendTopology::single(),
            queues: QueueConfig::single().with_depth(64),
            shards: ShardConfig::single(),
            controller_overhead: Nanos::from_nanos(20),
            pcie_command_overhead: Nanos::from_nanos(600),
        }
    }

    /// Changes the NVMe queue shape (builder style): queue count, ring depth
    /// and MSI coalescing, as swept by the queue-count sensitivity figure.
    #[must_use]
    pub fn with_queues(mut self, queues: QueueConfig) -> Self {
        self.queues = queues;
        self
    }

    /// Changes the tag-directory shard shape (builder style), as swept by
    /// the `hams-TE-s{n}` registry entries. Any shape is metrics-neutral by
    /// the shard-invariance contract.
    #[must_use]
    pub fn with_shards(mut self, shards: ShardConfig) -> Self {
        self.shards = shards;
        self
    }

    /// Changes the archive backend topology (builder style): one device, a
    /// RAID-0 fan-out or the CXL-attached variant, as swept by the
    /// `hams-TE-d{n}` registry entries. A stripe unit of `0` resolves to the
    /// MoS page size, aligning device ownership with the page's tag-array
    /// bank.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendTopology) -> Self {
        self.backend = backend;
        self
    }

    /// Changes the MoS page size (builder style), as swept by Fig. 20a.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a multiple of 4 KB.
    #[must_use]
    pub fn with_mos_page_size(mut self, size: u64) -> Self {
        assert!(
            size > 0 && size.is_multiple_of(4096),
            "MoS page size must be a positive multiple of 4 KB"
        );
        self.mos_page_size = size;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_their_modes() {
        let lp = HamsConfig::loose(PersistMode::Persist);
        assert_eq!(lp.attach, AttachMode::Loose);
        assert_eq!(lp.persist, PersistMode::Persist);
        assert!(lp.ssd.dram_capacity_bytes > 0);
        assert!(lp.ssd.supercap_backed);

        let te = HamsConfig::tight(PersistMode::Extend);
        assert_eq!(te.attach, AttachMode::Tight);
        assert_eq!(
            te.ssd.dram_capacity_bytes, 0,
            "advanced HAMS removes the SSD DRAM"
        );
    }

    #[test]
    fn default_page_size_matches_table_2() {
        assert_eq!(
            HamsConfig::loose(PersistMode::Extend).mos_page_size,
            128 * 1024
        );
    }

    #[test]
    fn queue_builder_swaps_the_submission_shape() {
        assert!(HamsConfig::loose(PersistMode::Extend).queues.is_single());
        let c = HamsConfig::tight(PersistMode::Extend).with_queues(QueueConfig::striped(4));
        assert_eq!(c.queues.num_queues, 4);
        assert_eq!(c.queues.coalescing.threshold, 4);
    }

    #[test]
    fn shard_builder_swaps_the_directory_shape() {
        assert_eq!(
            HamsConfig::loose(PersistMode::Extend).shards,
            ShardConfig::single()
        );
        let c = HamsConfig::tight(PersistMode::Extend).with_shards(ShardConfig::interleaved(8));
        assert_eq!(c.shards.count, 8);
    }

    #[test]
    fn backend_builder_swaps_the_archive_topology() {
        assert_eq!(
            HamsConfig::loose(PersistMode::Extend).backend,
            BackendTopology::single()
        );
        let c = HamsConfig::tight(PersistMode::Extend).with_backend(BackendTopology::raid0(4));
        assert_eq!(c.backend.device_count(), 4);
        assert!(!c.backend.uses_cxl());
    }

    #[test]
    fn page_size_builder_validates() {
        let c = HamsConfig::loose(PersistMode::Extend).with_mos_page_size(4096);
        assert_eq!(c.mos_page_size, 4096);
    }

    #[test]
    #[should_panic(expected = "multiple of 4 KB")]
    fn odd_page_size_panics() {
        let _ = HamsConfig::loose(PersistMode::Extend).with_mos_page_size(1000);
    }

    #[test]
    fn tiny_config_is_small_but_flash_dwarfs_nvdimm() {
        let c = HamsConfig::tiny_for_tests(AttachMode::Loose, PersistMode::Extend);
        assert!(c.nvdimm.capacity_bytes < 1 << 30);
        assert_eq!(c.mos_page_size, 4096);
        assert!(c.ssd.geometry.capacity_bytes() > c.nvdimm.capacity_bytes * 10);
    }
}
