//! The HAMS NVMe engine: in-controller management of the submission and
//! completion queues, journal tags and interrupts.
//!
//! The engine replaces the OS NVMe driver. It composes commands for cache
//! fills and evictions, sets the journal tag when a command is issued, clears
//! it when the completion interrupt arrives, and — because the queues live in
//! the pinned NVDIMM region — can be scanned after a power failure to find the
//! commands that never completed (§V-C, Fig. 15).

use std::collections::HashMap;

use hams_nvme::{MsiTable, NvmeCommand, NvmeOpcode, NvmeStatus, PrpList, QueueError, QueuePair};
use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

/// One command tracked by the engine, with the HAMS-side metadata the cache
/// logic needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackedCommand {
    /// The command as it sits in the submission queue.
    pub command: NvmeCommand,
    /// MoS page the command fills or evicts.
    pub mos_page: u64,
    /// Simulated completion time assigned by the device model.
    pub completes_at: Nanos,
}

/// Accounting counters for the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Read (fill) commands issued.
    pub reads_issued: u64,
    /// Write (eviction / persist) commands issued.
    pub writes_issued: u64,
    /// Completions processed.
    pub completions: u64,
    /// Commands re-issued by power-failure recovery.
    pub recovered: u64,
}

/// The in-controller NVMe engine.
///
/// # Example
///
/// ```
/// use hams_core::NvmeEngine;
/// use hams_sim::Nanos;
///
/// let mut engine = NvmeEngine::new(64);
/// let cid = engine
///     .issue_write(7, 0x1c0, 4096, 0xF000, false, Nanos::from_micros(5))
///     .unwrap();
/// assert_eq!(engine.journaled_incomplete(Nanos::ZERO).len(), 1);
/// engine.retire_due(Nanos::from_micros(5));
/// assert!(engine.journaled_incomplete(Nanos::from_micros(5)).is_empty());
/// let _ = cid;
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NvmeEngine {
    queue: QueuePair,
    msi: MsiTable,
    tracked: HashMap<u16, TrackedCommand>,
    stats: EngineStats,
}

impl NvmeEngine {
    /// Creates an engine with a single queue pair of the given depth.
    #[must_use]
    pub fn new(queue_depth: usize) -> Self {
        NvmeEngine {
            queue: QueuePair::new(0, queue_depth),
            msi: MsiTable::new(),
            tracked: HashMap::new(),
            stats: EngineStats::default(),
        }
    }

    /// Engine counters.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Number of commands issued but not yet retired.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.tracked.len()
    }

    /// Issues a fill (read) command for `mos_page`, whose data lands at
    /// NVDIMM address `nvdimm_addr` and whose device service completes at
    /// `completes_at`.
    ///
    /// # Errors
    ///
    /// Propagates queue-full errors from the submission queue.
    pub fn issue_read(
        &mut self,
        mos_page: u64,
        slba: u64,
        length: u64,
        nvdimm_addr: u64,
        completes_at: Nanos,
    ) -> Result<u16, QueueError> {
        let cmd = NvmeCommand::read(
            1,
            slba,
            length,
            PrpList::for_transfer(nvdimm_addr, length, 4096),
        )
        .with_journal_tag(true);
        self.issue(cmd, mos_page, completes_at)
    }

    /// Issues an eviction (write) command for `mos_page` reading its data from
    /// NVDIMM address `nvdimm_addr` (typically a PRP-pool clone slot).
    ///
    /// # Errors
    ///
    /// Propagates queue-full errors from the submission queue.
    pub fn issue_write(
        &mut self,
        mos_page: u64,
        slba: u64,
        length: u64,
        nvdimm_addr: u64,
        fua: bool,
        completes_at: Nanos,
    ) -> Result<u16, QueueError> {
        let cmd = NvmeCommand::write(
            1,
            slba,
            length,
            PrpList::for_transfer(nvdimm_addr, length, 4096),
        )
        .with_fua(fua)
        .with_journal_tag(true);
        self.issue(cmd, mos_page, completes_at)
    }

    fn issue(
        &mut self,
        cmd: NvmeCommand,
        mos_page: u64,
        completes_at: Nanos,
    ) -> Result<u16, QueueError> {
        match cmd.opcode {
            NvmeOpcode::Read => self.stats.reads_issued += 1,
            NvmeOpcode::Write => self.stats.writes_issued += 1,
            NvmeOpcode::Flush => {}
        }
        let cid = self.queue.submit(cmd)?;
        // The device fetches the command immediately in this model.
        let fetched = self
            .queue
            .fetch_next()
            .expect("command just submitted must be fetchable");
        self.tracked.insert(
            cid,
            TrackedCommand {
                command: fetched,
                mos_page,
                completes_at,
            },
        );
        Ok(cid)
    }

    /// Processes every completion whose device service has finished by `now`:
    /// posts the CQ entry, raises and consumes the MSI, clears the journal
    /// tag and removes the command from the outstanding set. Returns the MoS
    /// pages whose commands retired.
    pub fn retire_due(&mut self, now: Nanos) -> Vec<u64> {
        let due: Vec<u16> = self
            .tracked
            .iter()
            .filter(|(_, t)| t.completes_at <= now)
            .map(|(&cid, _)| cid)
            .collect();
        let mut pages = Vec::with_capacity(due.len());
        for cid in due {
            if self.queue.complete(cid, NvmeStatus::Success).is_ok() {
                self.msi.raise(0);
                let _ = self.msi.consume();
                let _ = self.queue.reap();
            }
            if let Some(t) = self.tracked.remove(&cid) {
                pages.push(t.mos_page);
            }
            self.stats.completions += 1;
        }
        pages.sort_unstable();
        pages
    }

    /// Commands whose journal tag is still set at `now` — exactly what the
    /// recovery scan of §V-C finds in the pinned SQ region after a power
    /// failure.
    #[must_use]
    pub fn journaled_incomplete(&self, now: Nanos) -> Vec<TrackedCommand> {
        let mut v: Vec<TrackedCommand> = self
            .tracked
            .values()
            .filter(|t| t.completes_at > now && t.command.journal_tag)
            .cloned()
            .collect();
        v.sort_by_key(|t| t.command.cid);
        v
    }

    /// Marks a set of commands as recovered (re-issued after power
    /// restoration) and retires them.
    pub fn mark_recovered(&mut self, cids: &[u16]) {
        for cid in cids {
            if self.tracked.remove(cid).is_some() {
                self.stats.recovered += 1;
            }
        }
    }

    /// Returns `true` when no command is in flight and the SQ/CQ tail pointers
    /// coincide — the paper's quiescence condition.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.tracked.is_empty() && self.queue.is_quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_retire_lifecycle() {
        let mut e = NvmeEngine::new(16);
        assert!(e.is_quiescent());
        e.issue_read(3, 0, 4096, 0x1000, Nanos::from_micros(8))
            .unwrap();
        e.issue_write(5, 8, 4096, 0x2000, false, Nanos::from_micros(4))
            .unwrap();
        assert_eq!(e.outstanding(), 2);
        assert!(!e.is_quiescent());

        // Only the write has completed by 5 µs.
        let retired = e.retire_due(Nanos::from_micros(5));
        assert_eq!(retired, vec![5]);
        assert_eq!(e.outstanding(), 1);

        let retired = e.retire_due(Nanos::from_micros(10));
        assert_eq!(retired, vec![3]);
        assert!(e.is_quiescent());
        assert_eq!(e.stats().completions, 2);
    }

    #[test]
    fn journal_scan_finds_only_incomplete_commands() {
        let mut e = NvmeEngine::new(16);
        e.issue_write(1, 0, 4096, 0x1000, false, Nanos::from_micros(2))
            .unwrap();
        e.issue_write(2, 8, 4096, 0x2000, false, Nanos::from_micros(50))
            .unwrap();
        e.retire_due(Nanos::from_micros(10));
        // Power fails at 10 µs: only the second command is journaled-incomplete.
        let pending = e.journaled_incomplete(Nanos::from_micros(10));
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].mos_page, 2);
        assert!(pending[0].command.journal_tag);
    }

    #[test]
    fn mark_recovered_counts_and_clears() {
        let mut e = NvmeEngine::new(16);
        let cid = e
            .issue_write(9, 0, 4096, 0x1000, true, Nanos::from_micros(100))
            .unwrap();
        let pending = e.journaled_incomplete(Nanos::ZERO);
        assert_eq!(pending.len(), 1);
        e.mark_recovered(&[cid]);
        assert_eq!(e.stats().recovered, 1);
        assert_eq!(e.outstanding(), 0);
    }

    #[test]
    fn stats_split_reads_and_writes() {
        let mut e = NvmeEngine::new(16);
        e.issue_read(1, 0, 4096, 0, Nanos::ZERO).unwrap();
        e.issue_write(2, 0, 4096, 0, false, Nanos::ZERO).unwrap();
        assert_eq!(e.stats().reads_issued, 1);
        assert_eq!(e.stats().writes_issued, 1);
    }

    #[test]
    fn shallow_queue_still_accepts_back_to_back_commands() {
        let mut e = NvmeEngine::new(2);
        e.issue_read(1, 0, 4096, 0, Nanos::from_secs(1)).unwrap();
        // The first command was fetched, freeing the SQ slot, so a second
        // submission succeeds; the queue depth bounds *unfetched* entries.
        assert!(e.issue_read(2, 0, 4096, 0, Nanos::from_secs(1)).is_ok());
        assert_eq!(e.outstanding(), 2);
    }
}
