//! The HAMS NVMe engine: in-controller management of the submission and
//! completion queues, journal tags and interrupts.
//!
//! The engine replaces the OS NVMe driver. It composes commands for cache
//! fills and evictions, sets the journal tag when a command is issued, clears
//! it when the completion interrupt arrives, and — because the queues live in
//! the pinned NVDIMM region — can be scanned after a power failure to find the
//! commands that never completed (§V-C, Fig. 15).
//!
//! The engine manages a [`QueueSet`] of N submission/completion pairs.
//! Independent fills are striped across the pairs (the paper's multi-queue
//! submission) and their completion interrupts coalesce through an
//! [`MsiCoalescer`]; [`QueueConfig::single`] reproduces the original
//! single-queue engine exactly.

use hams_nvme::{
    CommandId, MsiCoalescer, MsiCoalescerStats, MsiTable, NvmeCommand, NvmeOpcode, NvmeStatus,
    PrpList, QueueConfig, QueueError, QueueSet,
};
use hams_sim::{CompletionSource, FastHashMap, Nanos};
use serde::{Deserialize, Serialize};

use crate::tag_array::ShardConfig;

/// One command tracked by the engine, with the HAMS-side metadata the cache
/// logic needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrackedCommand {
    /// Fully-qualified identifier (queue pair + per-queue cid).
    pub id: CommandId,
    /// The command as it sits in the submission queue.
    pub command: NvmeCommand,
    /// MoS page the command fills or evicts.
    pub mos_page: u64,
    /// Tag-directory bank owning the page's set, recorded at issue time.
    /// Recovery uses it to clear the stale busy window the dead operation
    /// left in that bank, and to detect a directory repartition that raced
    /// in-flight journal state (the recorded bank no longer matching the
    /// live routing).
    pub shard: u16,
    /// Archive-set device owning the command's stripe, recorded at issue
    /// time. Power-failure recovery replays the command through the archive
    /// set, which routes it back to this device; the recorded index guards
    /// against a backend repartition racing in-flight journal state, exactly
    /// as `shard` does for the directory.
    pub device: u16,
    /// Simulated completion time assigned by the device model.
    pub completes_at: Nanos,
}

/// Accounting counters for the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Read (fill) commands issued.
    pub reads_issued: u64,
    /// Write (eviction / persist) commands issued.
    pub writes_issued: u64,
    /// Completions processed.
    pub completions: u64,
    /// Commands re-issued by power-failure recovery.
    pub recovered: u64,
}

/// The in-controller NVMe engine.
///
/// # Example
///
/// ```
/// use hams_core::NvmeEngine;
/// use hams_sim::Nanos;
///
/// let mut engine = NvmeEngine::new(64);
/// let id = engine
///     .issue_write(7, 0x1c0, 4096, 0xF000, false, Nanos::from_micros(5))
///     .unwrap();
/// assert_eq!(engine.journaled_incomplete(Nanos::ZERO).len(), 1);
/// engine.retire_due(Nanos::from_micros(5));
/// assert!(engine.journaled_incomplete(Nanos::from_micros(5)).is_empty());
/// let _ = id;
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NvmeEngine {
    config: QueueConfig,
    shards: ShardConfig,
    cache_sets: u64,
    devices: u16,
    stripe_lbas: u64,
    queues: QueueSet,
    msi: MsiTable,
    coalescer: MsiCoalescer,
    completions: CompletionSource<CommandId>,
    /// Outstanding commands by id. Touched several times per simulated miss
    /// (insert at issue, remove at retire), so it uses the simulator's fast
    /// deterministic hasher rather than `SipHash`.
    tracked: FastHashMap<CommandId, TrackedCommand>,
    stats: EngineStats,
}

impl NvmeEngine {
    /// Creates an engine with a single queue pair of the given depth.
    #[must_use]
    pub fn new(queue_depth: usize) -> Self {
        Self::with_config(QueueConfig::single().with_depth(queue_depth))
    }

    /// Creates an engine with the queue shape described by `config` and a
    /// single-bank tag directory.
    #[must_use]
    pub fn with_config(config: QueueConfig) -> Self {
        Self::with_topology(config, ShardConfig::single(), 1)
    }

    /// Creates an engine with the queue shape described by `config` inside a
    /// controller whose tag directory has `cache_sets` sets partitioned by
    /// `shards` — the topology the engine stamps onto every journal tag so
    /// recovery can route each replay to the owning bank. The archive
    /// backend is a single device.
    #[must_use]
    pub fn with_topology(config: QueueConfig, shards: ShardConfig, cache_sets: u64) -> Self {
        Self::with_backend(config, shards, cache_sets, 1, 1)
    }

    /// [`Self::with_topology`] for a multi-device archive backend: journal
    /// tags additionally record the device owning each command's stripe
    /// (`devices` archives, `stripe_lbas` LBAs per stripe unit), so the
    /// power-failure scan can assert the replay lands on the archive the
    /// dead command was in flight to.
    #[must_use]
    pub fn with_backend(
        config: QueueConfig,
        shards: ShardConfig,
        cache_sets: u64,
        devices: u16,
        stripe_lbas: u64,
    ) -> Self {
        NvmeEngine {
            queues: QueueSet::from_config(config),
            msi: MsiTable::new(),
            coalescer: MsiCoalescer::new(config.coalescing),
            completions: CompletionSource::new(),
            tracked: FastHashMap::default(),
            stats: EngineStats::default(),
            config,
            shards,
            cache_sets: cache_sets.max(1),
            devices: devices.max(1),
            stripe_lbas: stripe_lbas.max(1),
        }
    }

    /// The queue shape in force.
    #[must_use]
    pub fn config(&self) -> QueueConfig {
        self.config
    }

    /// Number of queue pairs managed.
    #[must_use]
    pub fn num_queues(&self) -> u16 {
        self.queues.num_queues()
    }

    /// Engine counters.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// MSI coalescing counters (interrupts posted, completions covered).
    #[must_use]
    pub fn coalescer_stats(&self) -> MsiCoalescerStats {
        self.coalescer.stats()
    }

    /// Number of commands issued but not yet retired.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.tracked.len()
    }

    /// The queue pair a MoS page's commands stripe onto.
    #[must_use]
    pub fn queue_for_page(&self, mos_page: u64) -> u16 {
        self.queues.queue_for(mos_page)
    }

    /// The tag-directory shard shape this engine stamps onto journal tags.
    #[must_use]
    pub fn shard_config(&self) -> ShardConfig {
        self.shards
    }

    /// The tag-directory bank owning `mos_page`'s set.
    #[must_use]
    pub fn shard_for_page(&self, mos_page: u64) -> u16 {
        self.shards.shard_of_set(
            (mos_page % self.cache_sets) as usize,
            self.cache_sets as usize,
        )
    }

    /// The archive-set device owning the stripe that starts at LBA `slba` —
    /// the routing [`hams_flash::ArchiveSet`] applies, mirrored here so
    /// every journal tag records its command's device.
    #[must_use]
    pub fn device_for_slba(&self, slba: u64) -> u16 {
        if self.devices <= 1 {
            0
        } else {
            ((slba / self.stripe_lbas) % u64::from(self.devices)) as u16
        }
    }

    /// Issues a fill (read) command for `mos_page`, whose data lands at
    /// NVDIMM address `nvdimm_addr` and whose device service completes at
    /// `completes_at`. The command is striped onto the page's queue pair.
    ///
    /// # Errors
    ///
    /// Propagates queue-full errors from the submission queue.
    pub fn issue_read(
        &mut self,
        mos_page: u64,
        slba: u64,
        length: u64,
        nvdimm_addr: u64,
        completes_at: Nanos,
    ) -> Result<CommandId, QueueError> {
        self.issue_read_on(
            self.queue_for_page(mos_page),
            mos_page,
            slba,
            length,
            nvdimm_addr,
            completes_at,
        )
    }

    /// [`Self::issue_read`] on an explicit queue pair — the striped-fill path,
    /// where the controller spreads one MoS page's stripe commands across
    /// the whole set.
    ///
    /// # Errors
    ///
    /// Propagates queue-full errors from the submission queue.
    pub fn issue_read_on(
        &mut self,
        queue: u16,
        mos_page: u64,
        slba: u64,
        length: u64,
        nvdimm_addr: u64,
        completes_at: Nanos,
    ) -> Result<CommandId, QueueError> {
        let cmd = NvmeCommand::read(
            1,
            slba,
            length,
            PrpList::for_transfer(nvdimm_addr, length, 4096),
        )
        .with_journal_tag(true);
        self.issue(queue, cmd, mos_page, completes_at)
    }

    /// Issues an already-composed fill command for `mos_page` on the page's
    /// queue pair — the lean single-stripe path: the controller built the
    /// exact command for the device service, so the engine journals it
    /// as-is instead of re-deriving an identical one (and its PRP list)
    /// from scratch.
    ///
    /// # Errors
    ///
    /// Propagates queue-full errors from the submission queue.
    pub fn issue_read_tracked(
        &mut self,
        mos_page: u64,
        cmd: NvmeCommand,
        completes_at: Nanos,
    ) -> Result<CommandId, QueueError> {
        self.issue(
            self.queue_for_page(mos_page),
            cmd.with_journal_tag(true),
            mos_page,
            completes_at,
        )
    }

    /// Issues an eviction (write) command for `mos_page` reading its data from
    /// NVDIMM address `nvdimm_addr` (typically a PRP-pool clone slot).
    ///
    /// # Errors
    ///
    /// Propagates queue-full errors from the submission queue.
    pub fn issue_write(
        &mut self,
        mos_page: u64,
        slba: u64,
        length: u64,
        nvdimm_addr: u64,
        fua: bool,
        completes_at: Nanos,
    ) -> Result<CommandId, QueueError> {
        let cmd = NvmeCommand::write(
            1,
            slba,
            length,
            PrpList::for_transfer(nvdimm_addr, length, 4096),
        )
        .with_fua(fua)
        .with_journal_tag(true);
        self.issue(self.queue_for_page(mos_page), cmd, mos_page, completes_at)
    }

    fn issue(
        &mut self,
        queue: u16,
        cmd: NvmeCommand,
        mos_page: u64,
        completes_at: Nanos,
    ) -> Result<CommandId, QueueError> {
        match cmd.opcode {
            NvmeOpcode::Read => self.stats.reads_issued += 1,
            NvmeOpcode::Write => self.stats.writes_issued += 1,
            NvmeOpcode::Flush => {}
        }
        let id = self.queues.submit_on(queue, cmd)?;
        // The device fetches the command immediately in this model.
        let fetched = self
            .queues
            .fetch_next(queue)
            .expect("command just submitted must be fetchable");
        self.completions.schedule(completes_at, id);
        let shard = self.shard_for_page(mos_page);
        let device = self.device_for_slba(fetched.slba);
        self.tracked.insert(
            id,
            TrackedCommand {
                id,
                command: fetched,
                mos_page,
                shard,
                device,
                completes_at,
            },
        );
        Ok(id)
    }

    /// Delivery times of one burst of stripe completions under the engine's
    /// MSI coalescing policy, in ascending completion order. The controller
    /// uses this to know when the interrupt covering a fill's last stripe
    /// reaches the cache logic.
    pub fn deliver_times(&mut self, completions: &[Nanos]) -> Vec<Nanos> {
        self.coalescer.deliver(completions)
    }

    /// [`Self::deliver_times`] into a caller-owned buffer — the hot-path form
    /// used by the fill path, which reuses one buffer across misses. `out` is
    /// cleared first.
    pub fn deliver_times_into(&mut self, completions: &[Nanos], out: &mut Vec<Nanos>) {
        self.coalescer.deliver_into(completions, out);
    }

    /// Processes every completion whose device service has finished by `now`,
    /// in global completion order across all queues: posts the CQ entry,
    /// raises and consumes the MSI, clears the journal tag and removes the
    /// command from the outstanding set. Returns the MoS pages whose
    /// commands retired.
    pub fn retire_due(&mut self, now: Nanos) -> Vec<u64> {
        let mut pages = Vec::new();
        self.retire_due_into(now, &mut pages);
        pages
    }

    /// [`Self::retire_due`] into a caller-owned scratch buffer — the hot-path
    /// form. The controller calls this once or twice per simulated access;
    /// with a reused buffer the drain allocates nothing, and when no
    /// completion is due (the overwhelmingly common case) it costs a single
    /// heap peek. `pages` is cleared and then filled with the MoS pages whose
    /// commands retired, in ascending page order.
    pub fn retire_due_into(&mut self, now: Nanos, pages: &mut Vec<u64>) {
        pages.clear();
        while let Some(event) = self.completions.pop_due(now) {
            let id = event.payload;
            if self.queues.complete(id, NvmeStatus::Success).is_ok() {
                self.msi.raise(id.queue);
                let _ = self.msi.consume();
                let _ = self.queues.reap(id.queue);
            }
            if let Some(t) = self.tracked.remove(&id) {
                pages.push(t.mos_page);
            }
            self.stats.completions += 1;
        }
        pages.sort_unstable();
    }

    /// Commands whose journal tag is still set at `now` — exactly what the
    /// recovery scan of §V-C finds in the pinned SQ region after a power
    /// failure. Ordered by (queue, cid) so the multi-queue scan is
    /// deterministic.
    #[must_use]
    pub fn journaled_incomplete(&self, now: Nanos) -> Vec<TrackedCommand> {
        let mut v: Vec<TrackedCommand> = self
            .tracked
            .values()
            .filter(|t| t.completes_at > now && t.command.journal_tag)
            .cloned()
            .collect();
        v.sort_by_key(|t| t.id);
        v
    }

    /// Drops every pending completion event: a power failure kills in-flight
    /// device work, so completions scheduled for after the failure must
    /// never be drained as normal successes. Recovery goes through the
    /// journal-tag scan ([`Self::journaled_incomplete`]), which reads the
    /// tracked commands, not the completion stream.
    pub fn drop_in_flight_completions(&mut self) {
        self.completions.clear();
        self.msi.clear();
    }

    /// Marks a set of commands as recovered (re-issued after power
    /// restoration) and retires them.
    pub fn mark_recovered(&mut self, ids: &[CommandId]) {
        for id in ids {
            if self.tracked.remove(id).is_some() {
                self.stats.recovered += 1;
            }
        }
    }

    /// Returns `true` when no command is in flight and every queue pair's
    /// tail pointers coincide — the paper's quiescence condition.
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.tracked.is_empty() && self.queues.is_quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_retire_lifecycle() {
        let mut e = NvmeEngine::new(16);
        assert!(e.is_quiescent());
        e.issue_read(3, 0, 4096, 0x1000, Nanos::from_micros(8))
            .unwrap();
        e.issue_write(5, 8, 4096, 0x2000, false, Nanos::from_micros(4))
            .unwrap();
        assert_eq!(e.outstanding(), 2);
        assert!(!e.is_quiescent());

        // Only the write has completed by 5 µs.
        let retired = e.retire_due(Nanos::from_micros(5));
        assert_eq!(retired, vec![5]);
        assert_eq!(e.outstanding(), 1);

        let retired = e.retire_due(Nanos::from_micros(10));
        assert_eq!(retired, vec![3]);
        assert!(e.is_quiescent());
        assert_eq!(e.stats().completions, 2);
    }

    #[test]
    fn journal_scan_finds_only_incomplete_commands() {
        let mut e = NvmeEngine::new(16);
        e.issue_write(1, 0, 4096, 0x1000, false, Nanos::from_micros(2))
            .unwrap();
        e.issue_write(2, 8, 4096, 0x2000, false, Nanos::from_micros(50))
            .unwrap();
        e.retire_due(Nanos::from_micros(10));
        // Power fails at 10 µs: only the second command is journaled-incomplete.
        let pending = e.journaled_incomplete(Nanos::from_micros(10));
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].mos_page, 2);
        assert!(pending[0].command.journal_tag);
    }

    #[test]
    fn mark_recovered_counts_and_clears() {
        let mut e = NvmeEngine::new(16);
        let id = e
            .issue_write(9, 0, 4096, 0x1000, true, Nanos::from_micros(100))
            .unwrap();
        let pending = e.journaled_incomplete(Nanos::ZERO);
        assert_eq!(pending.len(), 1);
        e.mark_recovered(&[id]);
        assert_eq!(e.stats().recovered, 1);
        assert_eq!(e.outstanding(), 0);
    }

    #[test]
    fn stats_split_reads_and_writes() {
        let mut e = NvmeEngine::new(16);
        e.issue_read(1, 0, 4096, 0, Nanos::ZERO).unwrap();
        e.issue_write(2, 0, 4096, 0, false, Nanos::ZERO).unwrap();
        assert_eq!(e.stats().reads_issued, 1);
        assert_eq!(e.stats().writes_issued, 1);
    }

    #[test]
    fn shallow_queue_still_accepts_back_to_back_commands() {
        let mut e = NvmeEngine::new(2);
        e.issue_read(1, 0, 4096, 0, Nanos::from_secs(1)).unwrap();
        // The first command was fetched, freeing the SQ slot, so a second
        // submission succeeds; the queue depth bounds *unfetched* entries.
        assert!(e.issue_read(2, 0, 4096, 0, Nanos::from_secs(1)).is_ok());
        assert_eq!(e.outstanding(), 2);
    }

    #[test]
    fn dropped_completions_are_never_drained_as_successes() {
        let mut e = NvmeEngine::new(8);
        e.issue_write(1, 0, 4096, 0x1000, false, Nanos::from_micros(100))
            .unwrap();
        // Power fails at 50 µs: the in-flight completion dies with it, and
        // recovery re-issues the journaled command.
        let pending = e.journaled_incomplete(Nanos::from_micros(50));
        assert_eq!(pending.len(), 1);
        e.drop_in_flight_completions();
        e.mark_recovered(&[pending[0].id]);
        // Time passing the original completion must not retire anything —
        // the command was recovered, not completed.
        assert!(e.retire_due(Nanos::from_micros(200)).is_empty());
        assert_eq!(e.stats().completions, 0);
        assert_eq!(e.stats().recovered, 1);
    }

    #[test]
    fn multi_queue_engine_stripes_pages_across_pairs() {
        let mut e = NvmeEngine::with_config(QueueConfig::striped(4).with_depth(16));
        assert_eq!(e.num_queues(), 4);
        let a = e.issue_read(0, 0, 4096, 0, Nanos::from_micros(1)).unwrap();
        let b = e.issue_read(1, 8, 4096, 0, Nanos::from_micros(2)).unwrap();
        let c = e.issue_read(5, 16, 4096, 0, Nanos::from_micros(3)).unwrap();
        assert_eq!(a.queue, 0);
        assert_eq!(b.queue, 1);
        assert_eq!(c.queue, 1, "page 5 stripes onto queue 5 % 4");
        assert_eq!(e.outstanding(), 3);
        let retired = e.retire_due(Nanos::from_micros(3));
        assert_eq!(retired, vec![0, 1, 5]);
        assert!(e.is_quiescent());
    }

    #[test]
    fn explicit_queue_reads_land_where_directed() {
        let mut e = NvmeEngine::with_config(QueueConfig::striped(2).with_depth(8));
        let id = e
            .issue_read_on(1, 0, 0, 4096, 0, Nanos::from_micros(1))
            .unwrap();
        assert_eq!(id.queue, 1);
        let pending = e.journaled_incomplete(Nanos::ZERO);
        assert_eq!(pending[0].id, id);
    }

    #[test]
    fn journal_tags_record_the_owning_shard() {
        let mut e = NvmeEngine::with_topology(
            QueueConfig::single().with_depth(16),
            ShardConfig::interleaved(4),
            8,
        );
        // Pages 0, 1, 5 map to sets 0, 1, 5 of 8; interleaved over 4 banks
        // that is shards 0, 1, 1.
        e.issue_write(0, 0, 4096, 0, false, Nanos::from_secs(1))
            .unwrap();
        e.issue_write(1, 8, 4096, 0, false, Nanos::from_secs(1))
            .unwrap();
        e.issue_write(5, 16, 4096, 0, false, Nanos::from_secs(1))
            .unwrap();
        let shards: Vec<u16> = e
            .journaled_incomplete(Nanos::ZERO)
            .iter()
            .map(|t| t.shard)
            .collect();
        assert_eq!(shards, vec![0, 1, 1]);
        assert_eq!(e.shard_for_page(13), 1, "set 5 of 8 lives in bank 1");
        assert_eq!(e.shard_config().count, 4);
    }

    #[test]
    fn single_shard_topology_is_the_default() {
        let e = NvmeEngine::new(8);
        assert_eq!(e.shard_config(), ShardConfig::single());
        assert_eq!(e.shard_for_page(12345), 0);
        assert_eq!(e.device_for_slba(98765), 0, "single backend is device 0");
    }

    #[test]
    fn journal_tags_record_the_owning_device() {
        // 4 devices, 8-LBA (one 32 KB page) stripe units.
        let mut e = NvmeEngine::with_backend(
            QueueConfig::single().with_depth(16),
            ShardConfig::single(),
            8,
            4,
            8,
        );
        // slba 0 → stripe 0 → device 0; slba 8 → stripe 1 → device 1;
        // slba 40 → stripe 5 → device 1.
        e.issue_write(0, 0, 4096, 0, false, Nanos::from_secs(1))
            .unwrap();
        e.issue_write(1, 8, 4096, 0, false, Nanos::from_secs(1))
            .unwrap();
        e.issue_write(5, 40, 4096, 0, false, Nanos::from_secs(1))
            .unwrap();
        let devices: Vec<u16> = e
            .journaled_incomplete(Nanos::ZERO)
            .iter()
            .map(|t| t.device)
            .collect();
        assert_eq!(devices, vec![0, 1, 1]);
        assert_eq!(e.device_for_slba(16), 2);
        assert_eq!(e.device_for_slba(32), 0, "stripe 4 wraps to device 0");
    }

    #[test]
    fn issue_read_tracked_journals_the_composed_command_verbatim() {
        let mut e = NvmeEngine::new(16);
        let cmd = NvmeCommand::read(1, 24, 4096, PrpList::for_transfer(0x3000, 4096, 4096));
        let id = e
            .issue_read_tracked(3, cmd.clone(), Nanos::from_micros(9))
            .unwrap();
        let pending = e.journaled_incomplete(Nanos::ZERO);
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].id, id);
        assert_eq!(pending[0].mos_page, 3);
        // Identical to what issue_read would have journalled for the same
        // geometry: the composed command plus the journal tag.
        assert_eq!(pending[0].command, cmd.with_journal_tag(true));
    }

    #[test]
    fn deliver_times_follow_the_coalescing_policy() {
        let mut e = NvmeEngine::with_config(QueueConfig::striped(2));
        let d = e.deliver_times(&[Nanos::from_micros(3), Nanos::from_micros(1)]);
        // Threshold 2: one interrupt covers both, posted at the later time.
        assert_eq!(d, vec![Nanos::from_micros(3); 2]);
        assert_eq!(e.coalescer_stats().interrupts, 1);
        assert_eq!(e.coalescer_stats().completions, 2);
    }

    #[test]
    fn multi_queue_journal_scan_orders_by_queue_then_cid() {
        let mut e = NvmeEngine::with_config(QueueConfig::striped(2).with_depth(8));
        // Pages 1 and 3 both stripe onto queue 1; page 2 onto queue 0.
        e.issue_write(1, 0, 4096, 0, false, Nanos::from_secs(1))
            .unwrap();
        e.issue_write(2, 8, 4096, 0, false, Nanos::from_secs(1))
            .unwrap();
        e.issue_write(3, 16, 4096, 0, false, Nanos::from_secs(1))
            .unwrap();
        let pending = e.journaled_incomplete(Nanos::ZERO);
        let order: Vec<u64> = pending.iter().map(|t| t.mos_page).collect();
        assert_eq!(order, vec![2, 1, 3]);
    }
}
