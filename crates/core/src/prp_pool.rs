//! The PRP pool: page-sized clone slots in the pinned NVDIMM region.
//!
//! When the HAMS cache logic evicts a page whose NVDIMM slot is about to be
//! refilled, it clones the page into the PRP pool and retargets the eviction
//! command's PRP pointer at the clone (§V-B, Fig. 14). The NVMe controller
//! then DMAs from the clone, so the cache slot can be reused immediately and
//! no eviction hazard or redundant eviction can occur.

use std::collections::HashMap;

use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

/// A clone currently occupying a PRP-pool slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloneSlot {
    /// MoS page number whose data is parked here.
    pub mos_page: u64,
    /// Time at which the eviction command reading this clone completes.
    pub release_at: Nanos,
}

/// Fixed-size pool of page clone slots.
///
/// # Example
///
/// ```
/// use hams_core::PrpPool;
/// use hams_sim::Nanos;
///
/// let mut pool = PrpPool::new(2);
/// let slot = pool.allocate(42, Nanos::from_micros(100), Nanos::ZERO).unwrap();
/// assert!(pool.holds_page(42));
/// pool.release(slot);
/// assert!(!pool.holds_page(42));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrpPool {
    slots: Vec<Option<CloneSlot>>,
    by_page: HashMap<u64, usize>,
    high_water: usize,
}

impl PrpPool {
    /// Creates a pool with `slots` clone slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "PRP pool needs at least one slot");
        PrpPool {
            slots: vec![None; slots],
            by_page: HashMap::new(),
            high_water: 0,
        }
    }

    /// Number of slots in the pool.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied slots.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.by_page.len()
    }

    /// Maximum simultaneous occupancy seen so far.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Returns `true` if a clone of `mos_page` is parked in the pool.
    #[must_use]
    pub fn holds_page(&self, mos_page: u64) -> bool {
        self.by_page.contains_key(&mos_page)
    }

    /// MoS pages currently parked in the pool (in-flight eviction data that
    /// survives a power failure because the pool lives in NVDIMM).
    #[must_use]
    pub fn parked_pages(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.by_page.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Allocates a slot for a clone of `mos_page` whose eviction completes at
    /// `release_at`. Expired slots (release time at or before `now`) are
    /// reclaimed first. Returns `None` if the pool is genuinely full.
    pub fn allocate(&mut self, mos_page: u64, release_at: Nanos, now: Nanos) -> Option<usize> {
        // Reclaim any slot whose eviction has already completed.
        for i in 0..self.slots.len() {
            if let Some(slot) = self.slots[i] {
                if slot.release_at <= now {
                    self.by_page.remove(&slot.mos_page);
                    self.slots[i] = None;
                }
            }
        }
        let idx = self.slots.iter().position(Option::is_none)?;
        self.slots[idx] = Some(CloneSlot {
            mos_page,
            release_at,
        });
        self.by_page.insert(mos_page, idx);
        self.high_water = self.high_water.max(self.by_page.len());
        Some(idx)
    }

    /// Releases slot `index` explicitly (its eviction command completed).
    pub fn release(&mut self, index: usize) {
        if let Some(slot) = self.slots.get_mut(index).and_then(Option::take) {
            self.by_page.remove(&slot.mos_page);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_release_round_trip() {
        let mut p = PrpPool::new(2);
        let a = p.allocate(1, Nanos::from_micros(10), Nanos::ZERO).unwrap();
        let b = p.allocate(2, Nanos::from_micros(10), Nanos::ZERO).unwrap();
        assert_ne!(a, b);
        assert_eq!(p.in_use(), 2);
        assert_eq!(p.high_water(), 2);
        assert_eq!(p.parked_pages(), vec![1, 2]);
        p.release(a);
        assert_eq!(p.in_use(), 1);
        assert!(!p.holds_page(1));
    }

    #[test]
    fn full_pool_rejects_until_expiry() {
        let mut p = PrpPool::new(1);
        p.allocate(1, Nanos::from_micros(10), Nanos::ZERO).unwrap();
        assert!(p
            .allocate(2, Nanos::from_micros(20), Nanos::from_micros(5))
            .is_none());
        // After the first clone's eviction completes, its slot is reclaimable.
        assert!(p
            .allocate(2, Nanos::from_micros(20), Nanos::from_micros(10))
            .is_some());
        assert!(!p.holds_page(1));
        assert!(p.holds_page(2));
    }

    #[test]
    fn releasing_unused_slot_is_harmless() {
        let mut p = PrpPool::new(2);
        p.release(1);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        let _ = PrpPool::new(0);
    }
}
