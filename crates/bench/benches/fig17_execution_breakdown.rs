//! Fig. 17 — system-level execution-time breakdown (mmap vs HAMS modes).

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{bench_scale, fig17_execution_breakdown, print_rows};

const WORKLOADS: &[&str] = &[
    "seqRd", "rndRd", "seqWr", "rndWr", "BFS", "KMN", "NN", "seqSel", "rndSel", "seqIns", "rndIns",
    "update",
];

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    for w in WORKLOADS {
        let rows = fig17_execution_breakdown(&scale, w);
        print_rows(&format!("Figure 17: execution breakdown ({w})"), &rows);
    }

    let mut group = c.benchmark_group("fig17");
    group.sample_size(10);
    group.bench_function("execution_breakdown_rndWr", |b| {
        b.iter(|| fig17_execution_breakdown(&scale, "rndWr"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
