//! Fig. 18 — memory access delay breakdown across the HAMS modes.

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{bench_scale, fig18_memory_delay, print_rows};

const WORKLOADS: &[&str] = &[
    "seqRd", "rndRd", "seqWr", "rndWr", "BFS", "KMN", "NN", "seqSel", "rndSel", "seqIns", "rndIns",
    "update",
];

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    for w in WORKLOADS {
        let rows = fig18_memory_delay(&scale, w);
        print_rows(&format!("Figure 18: memory delay breakdown ({w})"), &rows);
    }

    let mut group = c.benchmark_group("fig18");
    group.sample_size(10);
    group.bench_function("memory_delay_rndWr", |b| {
        b.iter(|| fig18_memory_delay(&scale, "rndWr"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
