//! Fig. 22 — sensitivity to the MoS tag-array shard count (this
//! reproduction's study, not a figure of the original paper).
//!
//! The series is pinned flat by the shard-invariance contract: every shard
//! count must report byte-identical simulated metrics, so the bench doubles
//! as a contract check (`fig_shard_sensitivity` asserts the invariance).

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{bench_scale, fig_shard_sensitivity, print_rows};

const SHARD_COUNTS: &[u16] = &[1, 2, 4, 8];
const WORKLOADS: &[&str] = &["rndRd", "rndWr", "update"];

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    for w in WORKLOADS {
        let rows = fig_shard_sensitivity(&scale, w, SHARD_COUNTS);
        print_rows(
            &format!("Figure 22: tag-array shard-count sensitivity ({w})"),
            &rows,
        );
    }

    let mut group = c.benchmark_group("fig22");
    group.sample_size(10);
    group.bench_function("shard_sweep_rndRd", |b| {
        b.iter(|| fig_shard_sensitivity(&scale, "rndRd", &[1, 8]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
