//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. ULL-Flash half-page channel striping on/off (the §II-C datapath
//!    optimisation),
//! 2. the SSD-internal DRAM present/absent under baseline HAMS (the energy
//!    and copy overhead advanced HAMS removes),
//! 3. persist vs extend mode at the same attach point (the cost of
//!    write-through persistence).

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::bench_scale;
use hams_core::{AttachMode, HamsConfig, PersistMode};
use hams_flash::{SsdConfig, SsdDevice};
use hams_nvdimm::{NvdimmConfig, PinnedRegionLayout};
use hams_nvme::{NvmeCommand, PrpList};
use hams_platforms::{run_workload, HamsPlatform};
use hams_sim::Nanos;
use hams_workloads::WorkloadSpec;

/// Latency of 256 preconditioned 4 KB random reads with/without striping.
fn striping_ablation() -> (f64, f64) {
    let measure = |stripe: bool| {
        let mut cfg = SsdConfig::ull_flash();
        cfg.stripe_halves = stripe;
        let mut ssd = SsdDevice::new(cfg);
        for p in 0..256u64 {
            let cmd = NvmeCommand::write(1, p, 4096, PrpList::single(0)).with_fua(true);
            let _ = ssd.service(&cmd, Nanos::ZERO);
        }
        let mut total = Nanos::ZERO;
        let t0 = Nanos::from_millis(10);
        for p in 0..256u64 {
            let cmd = NvmeCommand::read(1, (p * 37) % 256, 4096, PrpList::single(0));
            let done = ssd.service(&cmd, t0).unwrap();
            total += done.finished_at - t0;
        }
        total.as_micros_f64() / 256.0
    };
    (measure(true), measure(false))
}

/// hams-LE throughput with and without the SSD-internal DRAM, plus the
/// persist-mode variant, on a write-heavy workload.
fn hams_ablation() -> Vec<(String, f64)> {
    let scale = bench_scale();
    let spec = WorkloadSpec::by_name("rndWr").unwrap();
    let nvdimm_bytes = scale.cache_bytes();
    let build = |label: &str, dram: u64, persist: PersistMode| {
        let base = HamsConfig::loose(persist);
        let mut ssd = base.ssd;
        ssd.dram_capacity_bytes = dram;
        let config = HamsConfig {
            nvdimm: NvdimmConfig {
                capacity_bytes: nvdimm_bytes,
                ..NvdimmConfig::hpe_8gb()
            },
            pinned: PinnedRegionLayout::tiny_for_tests(),
            ssd,
            ..base
        }
        .with_mos_page_size(4096);
        let mut platform = HamsPlatform::from_config(config);
        let m = run_workload(&mut platform, spec, &scale);
        (label.to_owned(), m.pages_per_sec)
    };
    vec![
        build(
            "loose + SSD DRAM + extend",
            scale.ssd_dram_bytes(),
            PersistMode::Extend,
        ),
        build("loose + no SSD DRAM + extend", 0, PersistMode::Extend),
        build(
            "loose + SSD DRAM + persist",
            scale.ssd_dram_bytes(),
            PersistMode::Persist,
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let (striped, unstriped) = striping_ablation();
    println!("=== Ablation: ULL-Flash half-page channel striping ===");
    println!("striped 4KB read   : {striped:.2} us");
    println!("unstriped 4KB read : {unstriped:.2} us");
    println!();

    println!("=== Ablation: SSD-internal DRAM and persist mode (hams-L, rndWr) ===");
    for (label, pages) in hams_ablation() {
        println!("{label:<32} {pages:>12.0} pages/s");
    }
    println!();

    // Also show the attach-mode ablation through the standard platforms.
    let scale = bench_scale();
    let spec = WorkloadSpec::by_name("rndWr").unwrap();
    println!("=== Ablation: attach mode (extend, rndWr) ===");
    for (label, attach) in [
        ("loose (PCIe)", AttachMode::Loose),
        ("tight (DDR4)", AttachMode::Tight),
    ] {
        let mut platform = HamsPlatform::scaled(attach, PersistMode::Extend, scale.cache_bytes());
        let m = run_workload(&mut platform, spec, &scale);
        println!("{label:<16} {:>12.0} pages/s", m.pages_per_sec);
    }
    println!();

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("striping", |b| b.iter(striping_ablation));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
