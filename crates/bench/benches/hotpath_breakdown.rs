//! Microbenchmark pinning the breakdown-accumulator hot path.
//!
//! The serving path adds a handful of latency components per simulated
//! access and merges one scratch accumulator per batch. The seed
//! implementation keyed a `BTreeMap<String, Nanos>`, paying a `String`
//! allocation per add; the slot-indexed [`LatencyVector`] adds by
//! pre-interned [`ComponentId`] into a fixed array. This bench keeps both
//! shapes side by side so a regression in the allocation-free path (or an
//! accidental return to string keys) shows up as a wall-clock diff.

use std::collections::BTreeMap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hams_sim::{ComponentId, LatencyVector, Nanos};

/// Adds per simulated access on the HAMS serving path (hams/nvdimm/dma/ssd
/// plus the runner's exec fold) — the per-iteration shape both variants
/// replay.
const ACCESSES: usize = 4_096;

fn vector_accumulate() -> Nanos {
    let mut batch = LatencyVector::new();
    // The iteration count goes through black_box so the whole accumulation
    // cannot be const-folded away.
    for i in 0..black_box(ACCESSES) {
        let t = Nanos::from_nanos(i as u64 % 97 + 1);
        batch.add(ComponentId::HAMS, t);
        batch.add(ComponentId::NVDIMM, t);
        batch.add(ComponentId::DMA, t);
        batch.add(ComponentId::SSD, t);
    }
    batch.total()
}

fn vector_merge() -> Nanos {
    let mut scratch = LatencyVector::new();
    scratch.add(ComponentId::NVDIMM, Nanos::from_nanos(17));
    scratch.add(ComponentId::DMA, Nanos::from_nanos(23));
    scratch.add(ComponentId::SSD, Nanos::from_nanos(31));
    let mut total = LatencyVector::new();
    for _ in 0..black_box(ACCESSES) {
        total.merge(black_box(&scratch));
    }
    total.total()
}

fn btreemap_accumulate() -> Nanos {
    let mut batch: BTreeMap<String, Nanos> = BTreeMap::new();
    for i in 0..black_box(ACCESSES) {
        let t = Nanos::from_nanos(i as u64 % 97 + 1);
        for name in ["hams", "nvdimm", "dma", "ssd"] {
            *batch.entry(name.to_owned()).or_insert(Nanos::ZERO) += t;
        }
    }
    batch.values().copied().sum()
}

fn bench_breakdown_accumulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath_breakdown");
    group.sample_size(20);
    group.bench_function("latency_vector_add_4k_accesses", |b| {
        b.iter(|| black_box(vector_accumulate()))
    });
    group.bench_function("latency_vector_merge_4k_batches", |b| {
        b.iter(|| black_box(vector_merge()))
    });
    group.bench_function("btreemap_string_add_4k_accesses_baseline", |b| {
        b.iter(|| black_box(btreemap_accumulate()))
    });
    group.finish();

    // The point of the refactor, pinned: the slot-indexed accumulator must
    // never be slower than the string-keyed map it replaced. Best-of-N
    // timings so a scheduler preemption landing on one sample (this runs in
    // CI's perf-smoke job on shared runners) cannot fail the gate — only a
    // real regression across every attempt can.
    let best_of = |f: &dyn Fn() -> Nanos| {
        black_box(f());
        (0..7)
            .map(|_| {
                let start = std::time::Instant::now();
                black_box(f());
                start.elapsed()
            })
            .min()
            .expect("non-empty sample set")
    };
    let vector = best_of(&vector_accumulate);
    let map = best_of(&btreemap_accumulate);
    assert!(
        vector <= map,
        "LatencyVector adds ({vector:?}) regressed past the BTreeMap baseline ({map:?})"
    );
    println!(
        "latency-vector vs btreemap adds: {vector:?} vs {map:?} ({:.1}x)",
        map.as_secs_f64() / vector.as_secs_f64().max(1e-12)
    );
}

criterion_group!(benches, bench_breakdown_accumulator);
criterion_main!(benches);
