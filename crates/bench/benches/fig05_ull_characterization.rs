//! Fig. 5 — ULL-Flash vs NVMe SSD: 4 KB latency, latency and bandwidth
//! versus I/O queue depth.

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{fig05_device_characterization, fig05a_4kb_access, print_rows};

fn bench(c: &mut Criterion) {
    let (ddr_r, ddr_w, ull_r, ull_w) = fig05a_4kb_access();
    println!("=== Figure 5a: 4KB access latency (us) ===");
    println!("DDR4 read={ddr_r:.2} write={ddr_w:.2}  ULL read={ull_r:.2} write={ull_w:.2}");
    println!();
    let rows = fig05_device_characterization(&[1, 2, 4, 8, 16, 32], 400);
    print_rows("Figure 5b/5c: latency and bandwidth vs I/O depth", &rows);

    let mut group = c.benchmark_group("fig05");
    group.sample_size(10);
    group.bench_function("device_characterization_qd8", |b| {
        b.iter(|| fig05_device_characterization(&[8], 100))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
