//! Fig. 7 — software overheads of the MMF path and IPC of bypass strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{bench_scale, fig07a_software_overheads, fig07b_bypass_ipc, print_rows};

const WORKLOADS: &[&str] = &[
    "rndRd", "rndWr", "seqRd", "seqWr", "rndIns", "seqIns", "update", "rndSel", "seqSel",
];

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let rows = fig07a_software_overheads(&scale, WORKLOADS);
    print_rows(
        "Figure 7a: MMF execution breakdown and degradation vs NVDIMM",
        &rows,
    );
    let ipc = fig07b_bypass_ipc(&scale, &["rndRd", "rndWr", "update"]);
    print_rows("Figure 7b: IPC of bypass strategies", &ipc);

    let mut group = c.benchmark_group("fig07");
    group.sample_size(10);
    group.bench_function("software_overheads_rndWr", |b| {
        b.iter(|| fig07a_software_overheads(&scale, &["rndWr"]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
