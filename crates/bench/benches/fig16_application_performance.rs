//! Fig. 16 — application performance of all eleven platforms.

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{bench_scale, fig16_application_performance, print_rows};
use hams_platforms::PlatformKind;

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let rows = fig16_application_performance(
        &scale,
        &PlatformKind::all(),
        &[
            "seqRd", "rndRd", "seqWr", "rndWr", "BFS", "KMN", "NN", "seqSel", "rndSel", "seqIns",
            "rndIns", "update",
        ],
    );
    print_rows("Figure 16: application performance", &rows);

    let mut group = c.benchmark_group("fig16");
    group.sample_size(10);
    group.bench_function("hams_te_vs_mmap_rndWr", |b| {
        b.iter(|| {
            fig16_application_performance(
                &scale,
                &[PlatformKind::Mmap, PlatformKind::HamsTE],
                &["rndWr"],
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
