//! Fig. 6 — MMF-based system performance with SATA, NVMe and ULL-Flash SSDs.

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{bench_scale, fig06_mmf_performance, print_rows};

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let rows = fig06_mmf_performance(
        &scale,
        &["seqRd", "rndRd", "seqWr", "rndWr", "rndSel", "update"],
    );
    print_rows("Figure 6: MMF system performance per SSD", &rows);

    let mut group = c.benchmark_group("fig06");
    group.sample_size(10);
    group.bench_function("mmf_rndRd", |b| {
        b.iter(|| fig06_mmf_performance(&scale, &["rndRd"]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
