//! Fig. 10a — the DMA-interface share of baseline-HAMS memory access time.

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{bench_scale, fig10_dma_overhead, print_rows};

const WORKLOADS: &[&str] = &[
    "rndRd", "rndWr", "seqRd", "seqWr", "rndIns", "seqIns", "update", "rndSel", "seqSel",
];

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    let rows = fig10_dma_overhead(&scale, WORKLOADS);
    print_rows("Figure 10a: DMA share of hams-L memory delay", &rows);

    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("dma_overhead_rndWr", |b| {
        b.iter(|| fig10_dma_overhead(&scale, &["rndWr"]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
