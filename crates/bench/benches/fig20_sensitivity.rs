//! Fig. 20 — sensitivity to MoS page size and to larger memory footprints.

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{bench_scale, fig20a_page_sizes, fig20b_large_footprint, print_rows};

const PAGE_SIZES: &[u64] = &[
    4096,
    16 * 1024,
    64 * 1024,
    128 * 1024,
    256 * 1024,
    1024 * 1024,
];
const WORKLOADS: &[&str] = &["seqSel", "rndSel", "seqIns", "rndIns", "update"];

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    for w in WORKLOADS {
        let rows = fig20a_page_sizes(&scale, w, PAGE_SIZES);
        print_rows(&format!("Figure 20a: page-size sensitivity ({w})"), &rows);
        let rows = fig20b_large_footprint(&scale, w);
        print_rows(&format!("Figure 20b: 4x footprint ({w})"), &rows);
    }

    let mut group = c.benchmark_group("fig20");
    group.sample_size(10);
    group.bench_function("page_size_sweep_rndSel", |b| {
        b.iter(|| fig20a_page_sizes(&scale, "rndSel", &[4096, 128 * 1024]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
