//! Fig. 24 — open-loop latency vs offered load (this reproduction's study,
//! not a figure of the original paper).
//!
//! Each platform is calibrated closed-loop, then served Poisson arrivals at
//! rising fractions of its service rate through the bounded admission queue;
//! the knee of the sojourn-tail curve is its max sustainable throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{bench_scale, fig24_knees, fig24_latency_vs_load, print_rows};
use hams_platforms::PlatformKind;

const KINDS: &[PlatformKind] = &[
    PlatformKind::Mmap,
    PlatformKind::HamsTE,
    PlatformKind::Oracle,
];
const FRACTIONS: &[f64] = &[0.5, 0.9, 1.25];
const WORKLOADS: &[&str] = &["rndRd", "update"];

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    for w in WORKLOADS {
        let rows = fig24_latency_vs_load(&scale, w, KINDS, FRACTIONS);
        print_rows(
            &format!("Figure 24: open-loop latency vs load ({w})"),
            &rows,
        );
        for (platform, knee) in fig24_knees(&rows) {
            match knee {
                Some(row) => println!(
                    "  knee {platform}: {:.0}/s at {:.2}x calibrated rate",
                    row.achieved_per_sec, row.offered_frac
                ),
                None => println!("  knee {platform}: saturated at the lowest offered load"),
            }
        }
    }

    let mut group = c.benchmark_group("fig24");
    group.sample_size(10);
    group.bench_function("openloop_sweep_rndRd", |b| {
        b.iter(|| fig24_latency_vs_load(&scale, "rndRd", &[PlatformKind::HamsTE], &[0.9]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
