//! Fig. 19 — whole-system energy breakdown normalised to mmap.

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{bench_scale, fig19_energy, print_rows};

const WORKLOADS: &[&str] = &[
    "seqRd", "rndRd", "seqWr", "rndWr", "BFS", "KMN", "NN", "seqSel", "rndSel", "seqIns", "rndIns",
    "update",
];

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    for w in WORKLOADS {
        let rows = fig19_energy(&scale, w);
        print_rows(&format!("Figure 19: energy breakdown ({w})"), &rows);
    }

    let mut group = c.benchmark_group("fig19");
    group.sample_size(10);
    group.bench_function("energy_rndWr", |b| b.iter(|| fig19_energy(&scale, "rndWr")));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
