//! Fig. 23 — archive device scaling over the RAID-0 / CXL-attached backends
//! (this reproduction's study, not a figure of the original paper).
//!
//! Each `hams-TE-d{n}` cell runs the same command stream against a RAID-0
//! archive set of `n` ULL-Flash devices; `fig_device_scaling` asserts the
//! per-device traffic sums to the single-device totals, so the bench doubles
//! as a stripe-routing contract check.

use criterion::{criterion_group, criterion_main, Criterion};
use hams_bench::{bench_scale, fig_device_scaling, print_rows};

const DEVICE_COUNTS: &[u16] = &[1, 2, 4, 8];
const WORKLOADS: &[&str] = &["rndRd", "rndWr"];

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    for w in WORKLOADS {
        let rows = fig_device_scaling(&scale, w, DEVICE_COUNTS);
        print_rows(&format!("Figure 23: archive device scaling ({w})"), &rows);
    }

    let mut group = c.benchmark_group("fig23");
    group.sample_size(10);
    group.bench_function("device_sweep_rndRd", |b| {
        b.iter(|| fig_device_scaling(&scale, "rndRd", &[1, 4]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
