//! `figures` — regenerates every table and figure of the paper from the
//! command line.
//!
//! Usage: `cargo run -p hams-bench --release --bin figures [-- <id> ...]`
//! where `<id>` is one of `table1 table2 table3 fig5 fig6 fig7 fig10 fig16
//! fig17 fig18 fig19 fig20 fig21 fig22 fig23 fig24 fig25 fig26 timeline`;
//! with no arguments every artefact is produced (`fig21` is this
//! reproduction's NVMe queue-count sensitivity study, `fig22` its tag-array
//! shard-count study — pinned flat by the shard-invariance contract —
//! `fig23` its archive device-scaling study over the RAID-0 / CXL-attached
//! backends, `fig24` its open-loop latency-vs-offered-load study locating
//! each platform's max sustainable throughput, `fig25` its multi-tenant
//! noisy-neighbour study of a latency-sensitive tenant's sojourn tail under
//! a write-heavy antagonist, `fig26` its fault-injection study of the
//! sojourn tail through a device failure and rebuild-under-load on the
//! parity array, and `timeline` its traced request-lifecycle study: the
//! open-loop hams-TE scenario replayed with the simulated-time span tracer
//! attached, reported as a per-layer span table plus a structurally
//! validated Chrome `trace_event` export; none is a figure of the original
//! paper).

use hams_bench::*;
use hams_platforms::{feature_table, paper_config, PlatformKind};
use hams_telemetry::{chrome_trace_json, Layer};
use hams_workloads::WorkloadSpec;

const ALL: &[&str] = &[
    "table1", "table2", "table3", "fig5", "fig6", "fig7", "fig10", "fig16", "fig17", "fig18",
    "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "fig26", "timeline",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<&str> = if args.is_empty() {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let scale = figures_scale();
    let micro_rodinia = ["seqRd", "rndRd", "seqWr", "rndWr", "BFS", "KMN", "NN"];
    let sqlite = ["seqSel", "rndSel", "seqIns", "rndIns", "update"];
    let nine = [
        "rndRd", "rndWr", "seqRd", "seqWr", "rndIns", "seqIns", "update", "rndSel", "seqSel",
    ];

    for id in selected {
        match id {
            "table1" => {
                println!("=== Table I: feature comparison ===");
                for row in feature_table() {
                    println!(
                        "{:<9} capacity={:<6} OS-intervention={:<5} perf={:<10} byte-addressable={}",
                        row.name, row.capacity, row.os_intervention, row.performance, row.byte_addressable
                    );
                }
                println!();
            }
            "table2" => {
                let c = paper_config();
                println!("=== Table II: simulated system configuration ===");
                println!("OS      : {}", c.os);
                println!("CPU     : {}", c.cpu);
                println!("Cache   : {}", c.cache);
                println!("Memory  : {}", c.memory);
                println!("Storage : {}", c.storage);
                println!("Flash   : {}", c.flash);
                println!();
            }
            "table3" => {
                println!("=== Table III: workload characteristics ===");
                for w in WorkloadSpec::table3() {
                    println!(
                        "{:<8} inst={:>13} load={:.2} store={:.2} dataset={:>6.1}GB",
                        w.name,
                        w.total_instructions,
                        w.load_ratio,
                        w.store_ratio,
                        w.dataset_bytes as f64 / 1e9
                    );
                }
                println!();
            }
            "fig5" => {
                let (ddr_r, ddr_w, ull_r, ull_w) = fig05a_4kb_access();
                println!("=== Figure 5a: 4KB access latency (us) ===");
                println!(
                    "DDR4 read={ddr_r:.2} write={ddr_w:.2}  ULL read={ull_r:.2} write={ull_w:.2}\n"
                );
                let rows = fig05_device_characterization(&[1, 2, 4, 8, 16, 32], 600);
                print_rows("Figure 5b/5c: latency and bandwidth vs I/O depth", &rows);
            }
            "fig6" => {
                let rows = fig06_mmf_performance(
                    &scale,
                    &[
                        "seqRd", "rndRd", "seqWr", "rndWr", "seqSel", "rndSel", "seqIns", "rndIns",
                        "update",
                    ],
                );
                print_rows("Figure 6: MMF system performance per SSD", &rows);
            }
            "fig7" => {
                print_rows(
                    "Figure 7a: MMF execution breakdown",
                    &fig07a_software_overheads(&scale, &nine),
                );
                print_rows("Figure 7b: bypass IPC", &fig07b_bypass_ipc(&scale, &nine));
            }
            "fig10" => {
                print_rows(
                    "Figure 10a: DMA overhead",
                    &fig10_dma_overhead(&scale, &nine),
                );
            }
            "fig16" => {
                let rows = fig16_application_performance(
                    &scale,
                    &PlatformKind::all(),
                    &micro_rodinia
                        .iter()
                        .chain(sqlite.iter())
                        .copied()
                        .collect::<Vec<_>>(),
                );
                print_rows("Figure 16: application performance", &rows);
            }
            // Figures 17–19 loop workloads serially on purpose: the
            // run_matrix call inside each figure function already fans its
            // platforms out, and nesting parallel_map would multiply worker
            // threads past the HAMS_THREADS cap.
            "fig17" => {
                for w in micro_rodinia.iter().chain(sqlite.iter()) {
                    print_rows(
                        &format!("Figure 17: execution breakdown ({w})"),
                        &fig17_execution_breakdown(&scale, w),
                    );
                }
            }
            "fig18" => {
                for w in micro_rodinia.iter().chain(sqlite.iter()) {
                    print_rows(
                        &format!("Figure 18: memory delay breakdown ({w})"),
                        &fig18_memory_delay(&scale, w),
                    );
                }
            }
            "fig19" => {
                for w in micro_rodinia.iter().chain(sqlite.iter()) {
                    print_rows(
                        &format!("Figure 19: energy breakdown ({w})"),
                        &fig19_energy(&scale, w),
                    );
                }
            }
            "fig20" => {
                for w in &sqlite {
                    print_rows(
                        &format!("Figure 20a: page-size sensitivity ({w})"),
                        &fig20a_page_sizes(
                            &scale,
                            w,
                            &[
                                4096,
                                16 * 1024,
                                64 * 1024,
                                128 * 1024,
                                256 * 1024,
                                1024 * 1024,
                            ],
                        ),
                    );
                    print_rows(
                        &format!("Figure 20b: 4x footprint ({w})"),
                        &fig20b_large_footprint(&scale, w),
                    );
                }
            }
            "fig21" => {
                for w in ["rndRd", "rndWr", "seqRd"] {
                    print_rows(
                        &format!("Figure 21: NVMe queue-count sensitivity ({w})"),
                        &fig21_queue_sensitivity(&scale, w, &[1, 2, 4, 8]),
                    );
                }
            }
            "fig22" => {
                for w in ["rndRd", "rndWr", "update"] {
                    print_rows(
                        &format!("Figure 22: tag-array shard-count sensitivity ({w})"),
                        &fig_shard_sensitivity(&scale, w, &[1, 2, 4, 8]),
                    );
                }
            }
            "fig23" => {
                for w in ["rndRd", "rndWr"] {
                    print_rows(
                        &format!("Figure 23: archive device scaling ({w})"),
                        &fig_device_scaling(&scale, w, &[1, 2, 4, 8]),
                    );
                }
            }
            "fig24" => {
                for w in ["rndRd", "update"] {
                    let rows = fig24_latency_vs_load(
                        &scale,
                        w,
                        &PlatformKind::all(),
                        &[0.25, 0.5, 0.75, 0.9, 1.05, 1.25],
                    );
                    print_rows(
                        &format!("Figure 24: open-loop latency vs load ({w})"),
                        &rows,
                    );
                    println!("--- max sustainable throughput ({w}) ---");
                    for (platform, knee) in fig24_knees(&rows) {
                        match knee {
                            Some(row) => println!(
                                "{:<12} {:>12.0}/s at {:.2}x calibrated rate \
                                 (p99 sojourn {:.1}us)",
                                platform, row.achieved_per_sec, row.offered_frac, row.p99_us
                            ),
                            None => println!("{platform:<12} saturated at the lowest offered load"),
                        }
                    }
                    println!();
                }
            }
            "fig25" => {
                let rows = fig25_interference(
                    &scale,
                    "rndRd",
                    "update",
                    &fig25_kinds(),
                    &[0.25, 0.5, 0.9, 1.25, 1.5, 2.0],
                );
                print_rows(
                    "Figure 25: victim tail latency vs antagonist load (rndRd vs update)",
                    &rows,
                );
                println!("--- victim p99 monotone-in-antagonist-load prefix ---");
                for (platform, prefix, total) in fig25_summary(&rows) {
                    println!(
                        "{platform:<12} {prefix}/{total} points{}",
                        if prefix == total {
                            " (monotone across the sweep)"
                        } else {
                            ""
                        }
                    );
                }
                println!();
            }
            "fig26" => {
                let rows = fig26_latency_under_rebuild(&scale);
                print_rows(
                    &format!(
                        "Figure 26: sojourn tail through device failure and rebuild \
                         ({FIG26_WORKLOAD} at {FIG26_OFFERED_FRACTION}x calibrated rate)"
                    ),
                    &rows,
                );
                if let (Some(healthy), Some(recovered)) = (
                    fig26_phase(&rows, "healthy"),
                    fig26_phase(&rows, "recovered"),
                ) {
                    println!(
                        "--- recovery: healthy p99 {:.1}us -> recovered p99 {:.1}us ---\n",
                        healthy.p99_us, recovered.p99_us
                    );
                }
            }
            "timeline" => {
                let (metrics, telemetry) = timeline_traced_run(&scale);
                println!(
                    "=== Timeline: traced hams-TE rndRd open-loop at {TIMELINE_OFFERED_FRACTION}x \
                     calibrated rate ==="
                );
                println!(
                    "arrivals={} served={} dropped={} spans={} ({} evicted)",
                    metrics.arrivals,
                    metrics.served,
                    metrics.dropped,
                    telemetry.recorder.len(),
                    telemetry.recorder.dropped()
                );
                print_rows("per-layer span summary", &timeline_rows(&telemetry));
                let trace = chrome_trace_json(&[(
                    "hams-TE rndRd (open-loop)".to_owned(),
                    telemetry.spans_sorted(),
                )]);
                match validate_chrome_trace(&trace) {
                    Ok(layers) => {
                        let missing: Vec<&str> = Layer::ALL
                            .iter()
                            .map(|l| l.name())
                            .filter(|name| !layers.iter().any(|l| l == name))
                            .collect();
                        if missing.is_empty() {
                            println!(
                                "chrome trace: {} bytes, all {} serving-spine layers present \
                                 (export with `throughput --trace`)\n",
                                trace.len(),
                                Layer::ALL.len()
                            );
                        } else {
                            eprintln!("chrome trace is missing layers: {missing:?}");
                            std::process::exit(1);
                        }
                    }
                    Err(e) => {
                        eprintln!("chrome trace failed structural validation: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other => eprintln!("unknown figure id: {other}"),
        }
    }
}
