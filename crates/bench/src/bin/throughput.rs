//! Wall-clock throughput harness for the serving hot path.
//!
//! Every other harness in this crate measures *simulated* time; this one
//! measures how fast the simulator itself runs — the host-side cost of the
//! batched serving path that the correctness tiers (batch, multi-queue,
//! shard, backend equivalence) pin byte-for-byte. It replays the four fio
//! microbenchmark corners (`seqRd`, `rndRd`, `seqWr`, `rndWr`) on the eleven
//! registered platforms through [`run_workload`] (the batched path), reports
//! accesses/sec and ns/access per cell, and appends the run to
//! `BENCH_hotpath.json` so successive PRs accumulate a perf trajectory.
//!
//! Usage (from the repo root):
//!
//! ```text
//! cargo run -p hams-bench --release --bin throughput -- --label after
//! cargo run -p hams-bench --release --bin throughput -- --quick --label ci-smoke
//! cargo run -p hams-bench --release --bin throughput -- --out /tmp/scratch.json
//! ```
//!
//! `--quick` runs a reduced grid (`mmap`, `hams-TE`, `oracle` ×
//! `rndRd`, `rndWr`, fewer accesses, one repetition) for CI smoke runs.
//! The harness takes the best of `reps` repetitions per cell, which filters
//! scheduler noise; absolute numbers are machine-dependent and only
//! comparable within one machine (the JSON records the methodology).

use std::fmt::Write as _;
use std::time::Instant;

use hams_platforms::{run_workload, PlatformKind, ScaleProfile};
use hams_workloads::WorkloadSpec;

/// One measured (platform, workload) cell.
struct Cell {
    platform: &'static str,
    workload: &'static str,
    accesses: u64,
    best_wall_ns: u128,
    accesses_per_sec: f64,
    ns_per_access: f64,
}

struct Config {
    label: String,
    out: String,
    quick: bool,
}

fn parse_args() -> Config {
    let mut config = Config {
        label: "run".to_owned(),
        out: "BENCH_hotpath.json".to_owned(),
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => config.quick = true,
            "--label" => {
                let label = args.next().unwrap_or_else(|| {
                    eprintln!("--label needs a value");
                    std::process::exit(2);
                });
                // The label is interpolated into the JSON verbatim; keep it
                // to characters that can never break the document.
                if !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_. ".contains(c))
                    || label.is_empty()
                {
                    eprintln!(
                        "--label must be non-empty and use only [A-Za-z0-9-_. ], got {label:?}"
                    );
                    std::process::exit(2);
                }
                config.label = label;
            }
            "--out" => {
                config.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}; flags: --quick --label <s> --out <path>");
                std::process::exit(2);
            }
        }
    }
    config
}

/// The scale the wall-clock grid replays: the figure-bench profile for the
/// full grid, a shrunk one for `--quick`.
fn scale_for(quick: bool) -> ScaleProfile {
    if quick {
        ScaleProfile {
            capacity_divisor: 256,
            accesses: 8_000,
            seed: 42,
        }
    } else {
        ScaleProfile {
            capacity_divisor: 256,
            accesses: 60_000,
            seed: 42,
        }
    }
}

fn measure(
    kinds: &[PlatformKind],
    workloads: &[&'static str],
    scale: &ScaleProfile,
    reps: usize,
) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &workload in workloads {
        let spec = WorkloadSpec::by_name(workload).expect("known workload");
        for kind in kinds {
            let mut best = u128::MAX;
            for _ in 0..reps {
                // A fresh platform per repetition: every rep replays the
                // identical cold-start cell, so reps are comparable and the
                // best-of filter removes host scheduling noise.
                let mut platform = kind.build(scale);
                let start = Instant::now();
                let metrics = run_workload(platform.as_mut(), spec, scale);
                let elapsed = start.elapsed().as_nanos();
                assert_eq!(metrics.accesses, scale.accesses as u64);
                best = best.min(elapsed.max(1));
            }
            let secs = best as f64 / 1e9;
            let cell = Cell {
                platform: kind.label(),
                workload,
                accesses: scale.accesses as u64,
                best_wall_ns: best,
                accesses_per_sec: scale.accesses as f64 / secs,
                ns_per_access: best as f64 / scale.accesses as f64,
            };
            println!(
                "{:<12} {:<6} {:>9.0} accesses/s  {:>8.1} ns/access",
                cell.platform, cell.workload, cell.accesses_per_sec, cell.ns_per_access
            );
            cells.push(cell);
        }
    }
    cells
}

/// Renders one run entry (the object inside the top-level `"runs"` array).
fn render_run(label: &str, scale: &ScaleProfile, reps: usize, cells: &[Cell]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"label\": \"{label}\",");
    let _ = writeln!(
        out,
        "      \"scale\": {{\"capacity_divisor\": {}, \"accesses\": {}, \"seed\": {}}},",
        scale.capacity_divisor, scale.accesses, scale.seed
    );
    let _ = writeln!(out, "      \"reps\": {reps},");
    let _ = writeln!(out, "      \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "        {{\"platform\": \"{}\", \"workload\": \"{}\", \"accesses\": {}, \
             \"best_wall_ns\": {}, \"accesses_per_sec\": {:.1}, \"ns_per_access\": {:.1}}}",
            c.platform, c.workload, c.accesses, c.best_wall_ns, c.accesses_per_sec, c.ns_per_access
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "      ]");
    let _ = write!(out, "    }}");
    out
}

const METHODOLOGY: &str = "Host wall-clock of the batched serving path \
(run_workload, DEFAULT_BATCH_SIZE) per (platform, workload) cell; fresh \
platform per repetition, best-of-reps wall time; simulated metrics are \
unaffected by this harness. Numbers are machine-dependent: compare labels \
measured on the same machine only. Refresh with `cargo run -p hams-bench \
--release --bin throughput -- --label <name>` from the repo root.";

const FILE_TAIL: &str = "  ]\n}\n";

/// Writes (or appends to) the trajectory file. The file is always in the
/// exact shape this function emits, so appending is a splice before the
/// closing `]` of the `"runs"` array. An existing file that does not match
/// that shape is refused rather than silently replaced — the whole point of
/// the file is the accumulated trajectory.
fn write_trajectory(path: &str, run: &str) {
    let rendered = match std::fs::read_to_string(path) {
        Ok(existing) if existing.ends_with(FILE_TAIL) && existing.contains("\"runs\": [") => {
            let body = existing.trim_end_matches(FILE_TAIL).trim_end().to_owned();
            // The previous last run entry needs a trailing comma unless the
            // array was empty (body then ends with the `[` itself).
            let separator = if body.ends_with('[') { "\n" } else { ",\n" };
            format!("{body}{separator}{run}\n{FILE_TAIL}")
        }
        Ok(_) => {
            eprintln!(
                "{path} exists but is not in this harness's format (reformatted or \
                 hand-edited?); refusing to overwrite it — move it aside or pass a \
                 different --out"
            );
            std::process::exit(1);
        }
        Err(_) => {
            format!("{{\n  \"methodology\": \"{METHODOLOGY}\",\n  \"runs\": [\n{run}\n{FILE_TAIL}")
        }
    };
    std::fs::write(path, rendered).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}

fn main() {
    let config = parse_args();
    let scale = scale_for(config.quick);
    let (kinds, workloads, reps): (Vec<PlatformKind>, Vec<&'static str>, usize) = if config.quick {
        (
            vec![
                PlatformKind::Mmap,
                PlatformKind::HamsTE,
                PlatformKind::Oracle,
            ],
            vec!["rndRd", "rndWr"],
            1,
        )
    } else {
        (
            PlatformKind::all(),
            vec!["seqRd", "rndRd", "seqWr", "rndWr"],
            3,
        )
    };
    println!(
        "throughput: label={} quick={} accesses={} reps={reps}",
        config.label, config.quick, scale.accesses
    );
    let cells = measure(&kinds, &workloads, &scale, reps);
    let run = render_run(&config.label, &scale, reps, &cells);
    write_trajectory(&config.out, &run);
}
