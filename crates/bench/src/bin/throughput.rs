//! Wall-clock throughput harness for the serving hot path.
//!
//! Every other harness in this crate measures *simulated* time; this one
//! measures how fast the simulator itself runs — the host-side cost of the
//! batched serving path that the correctness tiers (batch, multi-queue,
//! shard, backend equivalence) pin byte-for-byte. It replays the four fio
//! microbenchmark corners (`seqRd`, `rndRd`, `seqWr`, `rndWr`) on the eleven
//! registered platforms through [`run_workload`] (the batched path), reports
//! accesses/sec and ns/access per cell, and appends the run to
//! `BENCH_hotpath.json` so successive PRs accumulate a perf trajectory.
//!
//! Usage (from the repo root):
//!
//! ```text
//! cargo run -p hams-bench --release --bin throughput -- --label after
//! cargo run -p hams-bench --release --bin throughput -- --quick --label ci-smoke
//! cargo run -p hams-bench --release --bin throughput -- --scaling --label scaling
//! cargo run -p hams-bench --release --bin throughput -- --out /tmp/scratch.json
//! cargo run -p hams-bench --release --bin throughput -- \
//!     --quick --label ci-smoke --out /tmp/smoke.json --gate BENCH_hotpath.json
//! ```
//!
//! `--quick` runs a reduced grid (`mmap`, `hams-TE`, `oracle` ×
//! `rndRd`, `rndWr`, fewer accesses, one repetition) for CI smoke runs.
//! `--scaling` runs the serving-path scaling sweep instead of the platform
//! grid: `hams-TE` × `rndRd` through the serial path, the batched path, and
//! the intra-cell parallel path at 1/2/4/8 cell threads, asserting along the
//! way that every path produces byte-identical simulated metrics. `--gate`
//! makes the run enforcing: each fresh cell is compared against the most
//! recent same-label run in the given trajectory file, and the process exits
//! non-zero if any cell regressed by more than [`GATE_RATIO`]. The harness
//! takes the best of `reps` repetitions per cell, which filters scheduler
//! noise; absolute numbers are machine-dependent and only comparable within
//! one machine (the JSON records the methodology) — the gate's generous
//! ratio absorbs machine-to-machine variance while still catching a
//! hot-path collapse.

use std::fmt::Write as _;
use std::time::Instant;

use hams_platforms::{
    run_workload, run_workload_cell_parallel, run_workload_serial, PlatformKind, ScaleProfile,
};
use hams_workloads::WorkloadSpec;

/// One measured (platform, workload) cell.
struct Cell {
    platform: &'static str,
    workload: &'static str,
    accesses: u64,
    best_wall_ns: u128,
    accesses_per_sec: f64,
    ns_per_access: f64,
}

/// Per-cell regression ratio above which a `--gate` run fails: fresh
/// ns/access must stay below `GATE_RATIO ×` the committed same-label cell.
const GATE_RATIO: f64 = 2.5;

struct Config {
    label: String,
    out: String,
    quick: bool,
    scaling: bool,
    gate: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        label: "run".to_owned(),
        out: "BENCH_hotpath.json".to_owned(),
        quick: false,
        scaling: false,
        gate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => config.quick = true,
            "--scaling" => config.scaling = true,
            "--gate" => {
                config.gate = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--gate needs a baseline trajectory path");
                    std::process::exit(2);
                }));
            }
            "--label" => {
                let label = args.next().unwrap_or_else(|| {
                    eprintln!("--label needs a value");
                    std::process::exit(2);
                });
                // The label is interpolated into the JSON verbatim; keep it
                // to characters that can never break the document.
                if !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_. ".contains(c))
                    || label.is_empty()
                {
                    eprintln!(
                        "--label must be non-empty and use only [A-Za-z0-9-_. ], got {label:?}"
                    );
                    std::process::exit(2);
                }
                config.label = label;
            }
            "--out" => {
                config.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; flags: --quick --scaling --label <s> \
                     --out <path> --gate <baseline>"
                );
                std::process::exit(2);
            }
        }
    }
    config
}

/// The scale the wall-clock grid replays: the figure-bench profile for the
/// full grid, a shrunk one for `--quick`.
fn scale_for(quick: bool) -> ScaleProfile {
    if quick {
        ScaleProfile {
            capacity_divisor: 256,
            accesses: 8_000,
            seed: 42,
        }
    } else {
        ScaleProfile {
            capacity_divisor: 256,
            accesses: 60_000,
            seed: 42,
        }
    }
}

fn measure(
    kinds: &[PlatformKind],
    workloads: &[&'static str],
    scale: &ScaleProfile,
    reps: usize,
) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &workload in workloads {
        let spec = WorkloadSpec::by_name(workload).expect("known workload");
        for kind in kinds {
            let mut best = u128::MAX;
            for _ in 0..reps {
                // A fresh platform per repetition: every rep replays the
                // identical cold-start cell, so reps are comparable and the
                // best-of filter removes host scheduling noise.
                let mut platform = kind.build(scale);
                let start = Instant::now();
                let metrics = run_workload(platform.as_mut(), spec, scale);
                let elapsed = start.elapsed().as_nanos();
                assert_eq!(metrics.accesses, scale.accesses as u64);
                best = best.min(elapsed.max(1));
            }
            let secs = best as f64 / 1e9;
            let cell = Cell {
                platform: kind.label(),
                workload,
                accesses: scale.accesses as u64,
                best_wall_ns: best,
                accesses_per_sec: scale.accesses as f64 / secs,
                ns_per_access: best as f64 / scale.accesses as f64,
            };
            println!(
                "{:<12} {:<6} {:>9.0} accesses/s  {:>8.1} ns/access",
                cell.platform, cell.workload, cell.accesses_per_sec, cell.ns_per_access
            );
            cells.push(cell);
        }
    }
    cells
}

/// Serving paths covered by the `--scaling` sweep. The "platform" column of
/// the emitted cells carries the path so the trajectory file keeps its
/// fixed cell shape.
const SCALING_VARIANTS: &[(&str, ServingPath)] = &[
    ("hams-TE/serial", ServingPath::Serial),
    ("hams-TE/batched", ServingPath::Batched),
    ("hams-TE/cell@1", ServingPath::Cell(1)),
    ("hams-TE/cell@2", ServingPath::Cell(2)),
    ("hams-TE/cell@4", ServingPath::Cell(4)),
    ("hams-TE/cell@8", ServingPath::Cell(8)),
];

#[derive(Clone, Copy)]
enum ServingPath {
    Serial,
    Batched,
    Cell(usize),
}

/// The scaling sweep: one platform × workload corner (`hams-TE` × `rndRd`,
/// the miss-heavy read corner the equivalence tiers lean on) replayed
/// through every serving path. Each repetition asserts the paths produce
/// byte-identical simulated metrics — a wall-clock harness that quietly
/// measured a divergent path would be worthless.
fn measure_scaling(scale: &ScaleProfile, reps: usize) -> Vec<Cell> {
    let spec = WorkloadSpec::by_name("rndRd").expect("known workload");
    let kind = PlatformKind::HamsTE;
    let mut cells = Vec::new();
    let mut reference = None;
    for &(label, path) in SCALING_VARIANTS {
        let mut best = u128::MAX;
        for _ in 0..reps {
            let mut platform = kind.build(scale);
            let start = Instant::now();
            let metrics = match path {
                ServingPath::Serial => run_workload_serial(platform.as_mut(), spec, scale),
                ServingPath::Batched => run_workload(platform.as_mut(), spec, scale),
                ServingPath::Cell(workers) => {
                    run_workload_cell_parallel(platform.as_mut(), spec, scale, workers)
                }
            };
            let elapsed = start.elapsed().as_nanos();
            assert_eq!(metrics.accesses, scale.accesses as u64);
            match &reference {
                None => reference = Some(metrics),
                Some(r) => assert_eq!(
                    r, &metrics,
                    "{label} diverged from the serial path's metrics"
                ),
            }
            best = best.min(elapsed.max(1));
        }
        let secs = best as f64 / 1e9;
        let cell = Cell {
            platform: label,
            workload: "rndRd",
            accesses: scale.accesses as u64,
            best_wall_ns: best,
            accesses_per_sec: scale.accesses as f64 / secs,
            ns_per_access: best as f64 / scale.accesses as f64,
        };
        println!(
            "{:<16} {:<6} {:>9.0} accesses/s  {:>8.1} ns/access",
            cell.platform, cell.workload, cell.accesses_per_sec, cell.ns_per_access
        );
        cells.push(cell);
    }
    cells
}

/// Renders one run entry (the object inside the top-level `"runs"` array).
fn render_run(label: &str, scale: &ScaleProfile, reps: usize, cells: &[Cell]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"label\": \"{label}\",");
    let _ = writeln!(
        out,
        "      \"scale\": {{\"capacity_divisor\": {}, \"accesses\": {}, \"seed\": {}}},",
        scale.capacity_divisor, scale.accesses, scale.seed
    );
    let _ = writeln!(out, "      \"reps\": {reps},");
    let _ = writeln!(out, "      \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "        {{\"platform\": \"{}\", \"workload\": \"{}\", \"accesses\": {}, \
             \"best_wall_ns\": {}, \"accesses_per_sec\": {:.1}, \"ns_per_access\": {:.1}}}",
            c.platform, c.workload, c.accesses, c.best_wall_ns, c.accesses_per_sec, c.ns_per_access
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "      ]");
    let _ = write!(out, "    }}");
    out
}

const METHODOLOGY: &str = "Host wall-clock of the batched serving path \
(run_workload, DEFAULT_BATCH_SIZE) per (platform, workload) cell; fresh \
platform per repetition, best-of-reps wall time; simulated metrics are \
unaffected by this harness. Numbers are machine-dependent: compare labels \
measured on the same machine only. Refresh with `cargo run -p hams-bench \
--release --bin throughput -- --label <name>` from the repo root.";

const FILE_TAIL: &str = "  ]\n}\n";

/// Writes (or appends to) the trajectory file. The file is always in the
/// exact shape this function emits, so appending is a splice before the
/// closing `]` of the `"runs"` array. An existing file that does not match
/// that shape is refused rather than silently replaced — the whole point of
/// the file is the accumulated trajectory.
fn write_trajectory(path: &str, run: &str) {
    let rendered = match std::fs::read_to_string(path) {
        Ok(existing) if existing.ends_with(FILE_TAIL) && existing.contains("\"runs\": [") => {
            let body = existing.trim_end_matches(FILE_TAIL).trim_end().to_owned();
            // The previous last run entry needs a trailing comma unless the
            // array was empty (body then ends with the `[` itself).
            let separator = if body.ends_with('[') { "\n" } else { ",\n" };
            format!("{body}{separator}{run}\n{FILE_TAIL}")
        }
        Ok(_) => {
            eprintln!(
                "{path} exists but is not in this harness's format (reformatted or \
                 hand-edited?); refusing to overwrite it — move it aside or pass a \
                 different --out"
            );
            std::process::exit(1);
        }
        Err(_) => {
            format!("{{\n  \"methodology\": \"{METHODOLOGY}\",\n  \"runs\": [\n{run}\n{FILE_TAIL}")
        }
    };
    std::fs::write(path, rendered).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}

/// Extracts the string value of `"key": "..."` from a JSON line emitted by
/// [`render_run`] (the gate only ever reads files this harness wrote, so a
/// line-oriented scan is sufficient and keeps the harness dependency-free).
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": \"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

/// Extracts the numeric value of `"key": <number>` from a JSON line.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(line.len() - start);
    line[start..start + end].parse().ok()
}

/// The most recent run with `label` in a trajectory file, as
/// `(platform, workload) -> ns_per_access`.
fn baseline_cells(text: &str, label: &str) -> Vec<(String, String, f64)> {
    let mut latest = Vec::new();
    let mut current: Option<Vec<(String, String, f64)>> = None;
    for line in text.lines() {
        if let Some(run_label) = json_str_field(line, "label") {
            // Entering a new run entry: bank the previous matching one.
            if let Some(cells) = current.take() {
                latest = cells;
            }
            if run_label == label {
                current = Some(Vec::new());
            }
        } else if let (Some(cells), Some(platform)) =
            (current.as_mut(), json_str_field(line, "platform"))
        {
            if let (Some(workload), Some(ns)) = (
                json_str_field(line, "workload"),
                json_num_field(line, "ns_per_access"),
            ) {
                cells.push((platform.to_owned(), workload.to_owned(), ns));
            }
        }
    }
    if let Some(cells) = current.take() {
        latest = cells;
    }
    latest
}

/// Enforces the perf gate: every fresh cell with a committed counterpart in
/// the latest same-label baseline run must stay within [`GATE_RATIO`] of it.
/// A missing baseline file, label, or cell is reported but never fails the
/// gate — the first run of a new label cannot regress against anything.
fn enforce_gate(baseline_path: &str, label: &str, cells: &[Cell]) {
    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        println!("gate: no baseline file {baseline_path}; passing by default");
        return;
    };
    let baseline = baseline_cells(&text, label);
    if baseline.is_empty() {
        println!("gate: no run labelled {label:?} in {baseline_path}; passing by default");
        return;
    }
    let mut failures = Vec::new();
    for cell in cells {
        let Some((_, _, base_ns)) = baseline
            .iter()
            .find(|(p, w, _)| p == cell.platform && w == cell.workload)
        else {
            println!(
                "gate: {} {} has no committed baseline cell; skipping",
                cell.platform, cell.workload
            );
            continue;
        };
        let ratio = cell.ns_per_access / base_ns;
        let verdict = if ratio > GATE_RATIO { "FAIL" } else { "ok" };
        println!(
            "gate: {:<16} {:<6} {:>8.1} ns/access vs baseline {:>8.1} = {:.2}x [{verdict}]",
            cell.platform, cell.workload, cell.ns_per_access, base_ns, ratio
        );
        if ratio > GATE_RATIO {
            failures.push(format!(
                "{} {}: {:.1} ns/access is {:.2}x the committed {:.1} (limit {GATE_RATIO}x)",
                cell.platform, cell.workload, cell.ns_per_access, ratio, base_ns
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!("perf gate failed ({} cell(s) regressed):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("gate: all cells within {GATE_RATIO}x of the committed {label:?} baseline");
}

fn main() {
    let config = parse_args();
    let scale = scale_for(config.quick);
    println!(
        "throughput: label={} quick={} scaling={} accesses={}",
        config.label, config.quick, config.scaling, scale.accesses
    );
    let (cells, reps) = if config.scaling {
        let reps = if config.quick { 1 } else { 3 };
        (measure_scaling(&scale, reps), reps)
    } else if config.quick {
        let kinds = [
            PlatformKind::Mmap,
            PlatformKind::HamsTE,
            PlatformKind::Oracle,
        ];
        (measure(&kinds, &["rndRd", "rndWr"], &scale, 1), 1)
    } else {
        (
            measure(
                &PlatformKind::all(),
                &["seqRd", "rndRd", "seqWr", "rndWr"],
                &scale,
                3,
            ),
            3,
        )
    };
    if let Some(baseline) = &config.gate {
        enforce_gate(baseline, &config.label, &cells);
    }
    let run = render_run(&config.label, &scale, reps, &cells);
    write_trajectory(&config.out, &run);
}
