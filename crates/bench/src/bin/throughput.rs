//! Wall-clock throughput harness for the serving hot path.
//!
//! Every other harness in this crate measures *simulated* time; this one
//! measures how fast the simulator itself runs — the host-side cost of the
//! batched serving path that the correctness tiers (batch, multi-queue,
//! shard, backend equivalence) pin byte-for-byte. It replays the four fio
//! microbenchmark corners (`seqRd`, `rndRd`, `seqWr`, `rndWr`) on the eleven
//! registered platforms through [`run_workload`] (the batched path), reports
//! accesses/sec and ns/access per cell, and appends the run to
//! `BENCH_hotpath.json` so successive PRs accumulate a perf trajectory.
//!
//! Usage (from the repo root):
//!
//! ```text
//! cargo run -p hams-bench --release --bin throughput -- --label after
//! cargo run -p hams-bench --release --bin throughput -- --quick --label ci-smoke
//! cargo run -p hams-bench --release --bin throughput -- --scaling --label scaling
//! cargo run -p hams-bench --release --bin throughput -- --openloop --label openloop
//! cargo run -p hams-bench --release --bin throughput -- --tenants --label tenants
//! cargo run -p hams-bench --release --bin throughput -- --faults --label faults
//! cargo run -p hams-bench --release --bin throughput -- --out /tmp/scratch.json
//! cargo run -p hams-bench --release --bin throughput -- \
//!     --quick --label ci-smoke --out /tmp/smoke.json --gate BENCH_hotpath.json
//! cargo run -p hams-bench --release --bin throughput -- --quick --trace --trace-out /tmp/t
//! cargo run -p hams-bench --release --bin throughput -- --prune 5
//! ```
//!
//! `--quick` runs a reduced grid (`mmap`, `hams-TE`, `oracle` ×
//! `rndRd`, `rndWr`, fewer accesses, one repetition) for CI smoke runs.
//! `--scaling` runs the serving-path scaling sweep instead of the platform
//! grid: `hams-TE` × `rndRd` through the serial path, the batched path, and
//! the intra-cell parallel path at 1/2/4/8 cell threads, asserting along the
//! way that every path produces byte-identical simulated metrics.
//! `--openloop` times the open-loop engine instead: each variant calibrates
//! the platform's closed-loop service rate, offers a Poisson fraction of it
//! through [`run_workload_open_loop`], and reports wall-clock per arrival
//! plus simulated sojourn p50/p99/p999. `--tenants` times the multi-tenant
//! engine: a latency-sensitive `rndRd` victim and a write-heavy `update`
//! antagonist share one admission queue through
//! [`run_tenant_set_open_loop`], reporting wall-clock per merged arrival
//! plus the victim's simulated sojourn tail and the pair's fairness.
//! `--faults` times degraded-mode serving: the `hams-TP-r5` parity array
//! serves the same open-loop load with and without a mid-run device
//! failure (the fig26 fault schedule), so the pair's spread is the cost of
//! reconstruction reads, parity-absorbed writes, and rebuild-under-load.
//! `--gate`
//! makes the run enforcing: each fresh cell is compared against the most
//! recent same-label run in the given trajectory file, and the process exits
//! non-zero if any cell regressed by more than [`GATE_RATIO`]. The harness
//! takes the best of `reps` repetitions per cell, which filters scheduler
//! noise; absolute numbers are machine-dependent and only comparable within
//! one machine (the JSON records the methodology) — the gate's generous
//! ratio absorbs machine-to-machine variance while still catching a
//! hot-path collapse.
//!
//! `--trace` does not measure wall-clock at all: it replays the timeline
//! scenario with the simulated-time span tracer attached and exports a
//! Chrome `trace_event` timeline plus the metrics-registry series (see
//! [`run_trace`]). `--prune <keep>` is maintenance: it rewrites the
//! trajectory file keeping only the latest `<keep>` runs per label, so the
//! append-only file stays reviewable as PRs accumulate.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use hams_bench::{
    fig26_fault_schedule, print_rows, timeline_rows, timeline_traced_run, validate_chrome_trace,
    FIG25_VICTIM_FRACTION, FIG26_OFFERED_FRACTION, FIG26_WORKLOAD,
};
use hams_platforms::{
    build_fault_platform, run_tenant_set_open_loop, run_workload, run_workload_cell_parallel,
    run_workload_open_loop, run_workload_serial, run_workload_traced, OpenLoopConfig, PlatformKind,
    ScaleProfile,
};
use hams_telemetry::{chrome_trace_json, Layer, RunTelemetry};
use hams_workloads::{ArrivalProcess, TenantSet, TenantSpec, WorkloadSpec};

/// One measured (platform, workload) cell.
struct Cell {
    platform: &'static str,
    workload: &'static str,
    accesses: u64,
    best_wall_ns: u128,
    accesses_per_sec: f64,
    ns_per_access: f64,
}

/// Per-cell regression ratio above which a `--gate` run fails: fresh
/// ns/access must stay below `GATE_RATIO ×` the committed same-label cell.
const GATE_RATIO: f64 = 2.5;

struct Config {
    label: String,
    out: String,
    quick: bool,
    scaling: bool,
    openloop: bool,
    tenants: bool,
    faults: bool,
    trace: bool,
    trace_out: String,
    prune: Option<usize>,
    gate: Option<String>,
}

fn parse_args() -> Config {
    let mut config = Config {
        label: "run".to_owned(),
        out: "BENCH_hotpath.json".to_owned(),
        quick: false,
        scaling: false,
        openloop: false,
        tenants: false,
        faults: false,
        trace: false,
        trace_out: "TRACE_hotpath".to_owned(),
        prune: None,
        gate: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => config.quick = true,
            "--scaling" => config.scaling = true,
            "--openloop" => config.openloop = true,
            "--tenants" => config.tenants = true,
            "--faults" => config.faults = true,
            "--trace" => config.trace = true,
            "--trace-out" => {
                config.trace_out = args.next().unwrap_or_else(|| {
                    eprintln!("--trace-out needs a path prefix");
                    std::process::exit(2);
                });
            }
            "--prune" => {
                let keep = args.next().and_then(|n| n.parse::<usize>().ok());
                match keep {
                    Some(keep) if keep >= 1 => config.prune = Some(keep),
                    _ => {
                        eprintln!("--prune needs a positive run count to keep per label");
                        std::process::exit(2);
                    }
                }
            }
            "--gate" => {
                config.gate = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--gate needs a baseline trajectory path");
                    std::process::exit(2);
                }));
            }
            "--label" => {
                let label = args.next().unwrap_or_else(|| {
                    eprintln!("--label needs a value");
                    std::process::exit(2);
                });
                // The label is interpolated into the JSON verbatim; keep it
                // to characters that can never break the document.
                if !label
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_. ".contains(c))
                    || label.is_empty()
                {
                    eprintln!(
                        "--label must be non-empty and use only [A-Za-z0-9-_. ], got {label:?}"
                    );
                    std::process::exit(2);
                }
                config.label = label;
            }
            "--out" => {
                config.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a value");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; flags: --quick --scaling --openloop \
                     --tenants --faults --trace --trace-out <prefix> --prune <keep> \
                     --label <s> --out <path> --gate <baseline>"
                );
                std::process::exit(2);
            }
        }
    }
    let modes = usize::from(config.scaling)
        + usize::from(config.openloop)
        + usize::from(config.tenants)
        + usize::from(config.faults)
        + usize::from(config.trace)
        + usize::from(config.prune.is_some());
    if modes > 1 {
        eprintln!(
            "--scaling, --openloop, --tenants, --faults, --trace and --prune are \
             mutually exclusive"
        );
        std::process::exit(2);
    }
    if config.prune.is_some() && config.gate.is_some() {
        eprintln!("--prune does not measure anything, so it cannot be combined with --gate");
        std::process::exit(2);
    }
    config
}

/// The scale the wall-clock grid replays: the figure-bench profile for the
/// full grid, a shrunk one for `--quick`.
fn scale_for(quick: bool) -> ScaleProfile {
    if quick {
        ScaleProfile {
            capacity_divisor: 256,
            accesses: 8_000,
            seed: 42,
        }
    } else {
        ScaleProfile {
            capacity_divisor: 256,
            accesses: 60_000,
            seed: 42,
        }
    }
}

fn measure(
    kinds: &[PlatformKind],
    workloads: &[&'static str],
    scale: &ScaleProfile,
    reps: usize,
) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &workload in workloads {
        let spec = WorkloadSpec::by_name(workload).expect("known workload");
        for kind in kinds {
            let mut best = u128::MAX;
            for _ in 0..reps {
                // A fresh platform per repetition: every rep replays the
                // identical cold-start cell, so reps are comparable and the
                // best-of filter removes host scheduling noise.
                let mut platform = kind.build(scale);
                let start = Instant::now();
                let metrics = run_workload(platform.as_mut(), spec, scale);
                let elapsed = start.elapsed().as_nanos();
                assert_eq!(metrics.accesses, scale.accesses as u64);
                best = best.min(elapsed.max(1));
            }
            let secs = best as f64 / 1e9;
            let cell = Cell {
                platform: kind.label(),
                workload,
                accesses: scale.accesses as u64,
                best_wall_ns: best,
                accesses_per_sec: scale.accesses as f64 / secs,
                ns_per_access: best as f64 / scale.accesses as f64,
            };
            println!(
                "{:<12} {:<6} {:>9.0} accesses/s  {:>8.1} ns/access",
                cell.platform, cell.workload, cell.accesses_per_sec, cell.ns_per_access
            );
            cells.push(cell);
        }
    }
    cells
}

/// Serving paths covered by the `--scaling` sweep. The "platform" column of
/// the emitted cells carries the path so the trajectory file keeps its
/// fixed cell shape.
const SCALING_VARIANTS: &[(&str, ServingPath)] = &[
    ("hams-TE/serial", ServingPath::Serial),
    ("hams-TE/batched", ServingPath::Batched),
    ("hams-TE/cell@1", ServingPath::Cell(1)),
    ("hams-TE/cell@2", ServingPath::Cell(2)),
    ("hams-TE/cell@4", ServingPath::Cell(4)),
    ("hams-TE/cell@8", ServingPath::Cell(8)),
];

#[derive(Clone, Copy)]
enum ServingPath {
    Serial,
    Batched,
    Cell(usize),
}

/// The scaling sweep: one platform × workload corner (`hams-TE` × `rndRd`,
/// the miss-heavy read corner the equivalence tiers lean on) replayed
/// through every serving path. Each repetition asserts the paths produce
/// byte-identical simulated metrics — a wall-clock harness that quietly
/// measured a divergent path would be worthless.
fn measure_scaling(scale: &ScaleProfile, reps: usize) -> Vec<Cell> {
    let spec = WorkloadSpec::by_name("rndRd").expect("known workload");
    let kind = PlatformKind::HamsTE;
    let mut cells = Vec::new();
    let mut reference = None;
    for &(label, path) in SCALING_VARIANTS {
        let mut best = u128::MAX;
        for _ in 0..reps {
            let mut platform = kind.build(scale);
            let start = Instant::now();
            let metrics = match path {
                ServingPath::Serial => run_workload_serial(platform.as_mut(), spec, scale),
                ServingPath::Batched => run_workload(platform.as_mut(), spec, scale),
                ServingPath::Cell(workers) => {
                    run_workload_cell_parallel(platform.as_mut(), spec, scale, workers)
                }
            };
            let elapsed = start.elapsed().as_nanos();
            assert_eq!(metrics.accesses, scale.accesses as u64);
            match &reference {
                None => reference = Some(metrics),
                Some(r) => assert_eq!(
                    r, &metrics,
                    "{label} diverged from the serial path's metrics"
                ),
            }
            best = best.min(elapsed.max(1));
        }
        let secs = best as f64 / 1e9;
        let cell = Cell {
            platform: label,
            workload: "rndRd",
            accesses: scale.accesses as u64,
            best_wall_ns: best,
            accesses_per_sec: scale.accesses as f64 / secs,
            ns_per_access: best as f64 / scale.accesses as f64,
        };
        println!(
            "{:<16} {:<6} {:>9.0} accesses/s  {:>8.1} ns/access",
            cell.platform, cell.workload, cell.accesses_per_sec, cell.ns_per_access
        );
        cells.push(cell);
    }
    cells
}

/// Open-loop variants: (trajectory label, platform, offered fraction of the
/// platform's calibrated closed-loop service rate). Fractions below 1.0 are
/// sustainable; the hams-TE pair brackets the knee region the `fig24` sweep
/// maps in full.
const OPENLOOP_VARIANTS: &[(&str, PlatformKind, f64)] = &[
    ("mmap/ol@0.9", PlatformKind::Mmap, 0.9),
    ("hams-TE/ol@0.5", PlatformKind::HamsTE, 0.5),
    ("hams-TE/ol@0.9", PlatformKind::HamsTE, 0.9),
    ("oracle/ol@0.9", PlatformKind::Oracle, 0.9),
];

/// The open-loop sweep: wall-clock cost of the open-loop engine itself per
/// arrival, plus the simulated sojourn tail it reports. Calibration (one
/// closed-loop run per variant, outside the timer) converts each fraction
/// into an absolute Poisson rate, so the cells stay meaningful as the
/// simulator's service times evolve across PRs.
fn measure_openloop(scale: &ScaleProfile, reps: usize) -> Vec<Cell> {
    let spec = WorkloadSpec::by_name("rndRd").expect("known workload");
    let mut cells = Vec::new();
    for &(label, kind, fraction) in OPENLOOP_VARIANTS {
        let service_rate = {
            let mut platform = kind.build(scale);
            let m = run_workload(platform.as_mut(), spec, scale);
            m.accesses as f64 / m.total_time.as_secs_f64().max(1e-12)
        };
        // A wall-clock harness only reads the histogram; skip the
        // per-request record Vec.
        let config = OpenLoopConfig::poisson(fraction * service_rate).with_records(false);
        let mut best = u128::MAX;
        let mut last_metrics = None;
        for _ in 0..reps {
            let mut platform = kind.build(scale);
            let start = Instant::now();
            let metrics = run_workload_open_loop(platform.as_mut(), spec, scale, &config);
            let elapsed = start.elapsed().as_nanos();
            assert_eq!(metrics.arrivals, scale.accesses as u64);
            best = best.min(elapsed.max(1));
            last_metrics = Some(metrics);
        }
        let metrics = last_metrics.expect("reps >= 1");
        let [p50, p99, p999] = metrics.sojourn_p50_p99_p999();
        let us = |t: Option<hams_sim::Nanos>| t.map_or(f64::NAN, hams_sim::Nanos::as_micros_f64);
        let secs = best as f64 / 1e9;
        let cell = Cell {
            platform: label,
            workload: "rndRd",
            accesses: scale.accesses as u64,
            best_wall_ns: best,
            accesses_per_sec: scale.accesses as f64 / secs,
            ns_per_access: best as f64 / scale.accesses as f64,
        };
        println!(
            "{:<16} {:<6} {:>9.0} arrivals/s  {:>8.1} ns/arrival  sojourn p50/p99/p999 \
             {:>8.1}/{:>8.1}/{:>8.1} us  served {} dropped {}",
            cell.platform,
            cell.workload,
            cell.accesses_per_sec,
            cell.ns_per_access,
            us(p50),
            us(p99),
            us(p999),
            metrics.served,
            metrics.dropped
        );
        cells.push(cell);
    }
    cells
}

/// Multi-tenant variants: (trajectory label, platform, antagonist offered
/// fraction of the platform's calibrated closed-loop service rate). The
/// victim always offers [`FIG25_VICTIM_FRACTION`]; the hams-TE pair brackets
/// light and heavy interference, the fig25 sweep maps the curve in full.
const TENANT_VARIANTS: &[(&str, PlatformKind, f64)] = &[
    ("mmap/mt@1.5", PlatformKind::Mmap, 1.5),
    ("hams-TE/mt@0.5", PlatformKind::HamsTE, 0.5),
    ("hams-TE/mt@1.5", PlatformKind::HamsTE, 1.5),
    ("oracle/mt@1.5", PlatformKind::Oracle, 1.5),
];

/// The multi-tenant sweep: wall-clock cost of the merged-stream engine per
/// arrival (a `rndRd` victim plus an `update` antagonist through one
/// admission queue), with the victim's simulated sojourn tail and the
/// pair's fairness alongside. The antagonist's access count scales with its
/// rate so both tenants stay active over the same simulated window — the
/// fig25 methodology at smoke size.
fn measure_tenants(scale: &ScaleProfile, reps: usize) -> Vec<Cell> {
    let victim = WorkloadSpec::by_name("rndRd").expect("known workload");
    let antagonist = WorkloadSpec::by_name("update").expect("known workload");
    let mut cells = Vec::new();
    for &(label, kind, fraction) in TENANT_VARIANTS {
        let service_rate = {
            let mut platform = kind.build(scale);
            let m = run_workload(platform.as_mut(), victim, scale);
            m.accesses as f64 / m.total_time.as_secs_f64().max(1e-12)
        };
        let antagonist_accesses =
            ((scale.accesses as f64 * fraction / FIG25_VICTIM_FRACTION).round() as usize).max(1);
        let set = TenantSet::new(vec![
            TenantSpec::new(
                "victim",
                victim,
                ArrivalProcess::Poisson {
                    rate_per_sec: FIG25_VICTIM_FRACTION * service_rate,
                },
            ),
            TenantSpec::new(
                "antagonist",
                antagonist,
                ArrivalProcess::Poisson {
                    rate_per_sec: fraction * service_rate,
                },
            )
            .with_accesses(antagonist_accesses),
        ]);
        let config = OpenLoopConfig::poisson(service_rate).with_records(false);
        let total_arrivals = (scale.accesses + antagonist_accesses) as u64;
        let mut best = u128::MAX;
        let mut last_metrics = None;
        for _ in 0..reps {
            let mut platform = kind.build(scale);
            let start = Instant::now();
            let metrics = run_tenant_set_open_loop(platform.as_mut(), &set, scale, &config);
            let elapsed = start.elapsed().as_nanos();
            assert_eq!(metrics.merged.arrivals, total_arrivals);
            assert_eq!(
                metrics.tenants.iter().map(|t| t.served).sum::<u64>(),
                metrics.merged.served,
                "{label}: per-tenant served no longer sums to the merged total"
            );
            best = best.min(elapsed.max(1));
            last_metrics = Some(metrics);
        }
        let metrics = last_metrics.expect("reps >= 1");
        let v = &metrics.tenants[0];
        let [p50, p99, p999] = v.sojourn_p50_p99_p999();
        let us = |t: Option<hams_sim::Nanos>| t.map_or(f64::NAN, hams_sim::Nanos::as_micros_f64);
        let secs = best as f64 / 1e9;
        let cell = Cell {
            platform: label,
            workload: "rndRd+update",
            accesses: total_arrivals,
            best_wall_ns: best,
            accesses_per_sec: total_arrivals as f64 / secs,
            ns_per_access: best as f64 / total_arrivals as f64,
        };
        println!(
            "{:<16} {:<12} {:>9.0} arrivals/s  {:>8.1} ns/arrival  victim p50/p99/p999 \
             {:>8.1}/{:>8.1}/{:>8.1} us  dropped {}  fairness {:.3}",
            cell.platform,
            cell.workload,
            cell.accesses_per_sec,
            cell.ns_per_access,
            us(p50),
            us(p99),
            us(p999),
            metrics.merged.dropped,
            metrics.fairness()
        );
        cells.push(cell);
    }
    cells
}

/// Fault variants: (trajectory label, whether the fig26 fault plan is
/// installed). Both serve the same offered load on the same parity array,
/// so the pair's spread is the wall-clock (and simulated-tail) cost of
/// degraded serving plus rebuild-under-load.
const FAULT_VARIANTS: &[(&str, bool)] =
    &[("hams-TP-r5/ol@0.7", false), ("hams-TP-r5/ft@0.7", true)];

/// The fault sweep: wall-clock cost of open-loop serving on the parity
/// array with and without a mid-run device failure. The faulted leg
/// installs the fig26 fault schedule (fail-stop at 30% of the expected
/// span, spare at 40%, paced rebuild), and asserts after every repetition
/// that the array actually walked the full state machine back to healthy —
/// a fault harness whose fault silently never fired would measure nothing.
fn measure_faults(scale: &ScaleProfile, reps: usize) -> Vec<Cell> {
    let spec = WorkloadSpec::by_name(FIG26_WORKLOAD).expect("known workload");
    let service_rate = {
        let mut platform = build_fault_platform(scale);
        let m = run_workload(&mut platform, spec, scale);
        m.accesses as f64 / m.total_time.as_secs_f64().max(1e-12)
    };
    let offered = FIG26_OFFERED_FRACTION * service_rate;
    let config = OpenLoopConfig::poisson(offered).with_records(false);
    let mut cells = Vec::new();
    for &(label, faulted) in FAULT_VARIANTS {
        let mut best = u128::MAX;
        let mut last_metrics = None;
        let mut rebuild_rows = 0;
        for _ in 0..reps {
            let (plan, span) = fig26_fault_schedule(scale.accesses, offered);
            let mut platform = build_fault_platform(scale);
            if faulted {
                platform.controller_mut().set_fault_plan(plan);
            }
            let start = Instant::now();
            let metrics = run_workload_open_loop(&mut platform, spec, scale, &config);
            let elapsed = start.elapsed().as_nanos();
            assert_eq!(metrics.arrivals, scale.accesses as u64);
            if faulted {
                platform
                    .controller_mut()
                    .advance_faults(metrics.last_finish.max(span));
                let stats = platform
                    .controller()
                    .fault_stats()
                    .expect("fault plan installed");
                assert_eq!(stats.faults_injected, 1, "{label}: the fault never fired");
                assert_eq!(
                    stats.repairs_completed, 1,
                    "{label}: the rebuild never completed"
                );
                rebuild_rows = stats.rebuild_rows_done;
            }
            best = best.min(elapsed.max(1));
            last_metrics = Some(metrics);
        }
        let metrics = last_metrics.expect("reps >= 1");
        let [p50, p99, p999] = metrics.sojourn_p50_p99_p999();
        let us = |t: Option<hams_sim::Nanos>| t.map_or(f64::NAN, hams_sim::Nanos::as_micros_f64);
        let secs = best as f64 / 1e9;
        let cell = Cell {
            platform: label,
            workload: FIG26_WORKLOAD,
            accesses: scale.accesses as u64,
            best_wall_ns: best,
            accesses_per_sec: scale.accesses as f64 / secs,
            ns_per_access: best as f64 / scale.accesses as f64,
        };
        println!(
            "{:<16} {:<6} {:>9.0} arrivals/s  {:>8.1} ns/arrival  sojourn p50/p99/p999 \
             {:>8.1}/{:>8.1}/{:>8.1} us  served {} dropped {}  rebuild rows {}",
            cell.platform,
            cell.workload,
            cell.accesses_per_sec,
            cell.ns_per_access,
            us(p50),
            us(p99),
            us(p999),
            metrics.served,
            metrics.dropped,
            rebuild_rows
        );
        cells.push(cell);
    }
    cells
}

/// Renders one run entry (the object inside the top-level `"runs"` array).
fn render_run(label: &str, scale: &ScaleProfile, reps: usize, cells: &[Cell]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"label\": \"{label}\",");
    let _ = writeln!(
        out,
        "      \"scale\": {{\"capacity_divisor\": {}, \"accesses\": {}, \"seed\": {}}},",
        scale.capacity_divisor, scale.accesses, scale.seed
    );
    let _ = writeln!(out, "      \"reps\": {reps},");
    let _ = writeln!(out, "      \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "        {{\"platform\": \"{}\", \"workload\": \"{}\", \"accesses\": {}, \
             \"best_wall_ns\": {}, \"accesses_per_sec\": {:.1}, \"ns_per_access\": {:.1}}}",
            c.platform, c.workload, c.accesses, c.best_wall_ns, c.accesses_per_sec, c.ns_per_access
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(out, "      ]");
    let _ = write!(out, "    }}");
    out
}

const METHODOLOGY: &str = "Host wall-clock of the batched serving path \
(run_workload, DEFAULT_BATCH_SIZE) per (platform, workload) cell; fresh \
platform per repetition, best-of-reps wall time; simulated metrics are \
unaffected by this harness. Numbers are machine-dependent: compare labels \
measured on the same machine only. Refresh with `cargo run -p hams-bench \
--release --bin throughput -- --label <name>` from the repo root.";

const FILE_TAIL: &str = "  ]\n}\n";

/// Writes (or appends to) the trajectory file. The file is always in the
/// exact shape this function emits, so appending is a splice before the
/// closing `]` of the `"runs"` array. An existing file that does not match
/// that shape is refused rather than silently replaced — the whole point of
/// the file is the accumulated trajectory.
fn write_trajectory(path: &str, run: &str) {
    let rendered = match std::fs::read_to_string(path) {
        Ok(existing) if existing.ends_with(FILE_TAIL) && existing.contains("\"runs\": [") => {
            let body = existing.trim_end_matches(FILE_TAIL).trim_end().to_owned();
            // The previous last run entry needs a trailing comma unless the
            // array was empty (body then ends with the `[` itself).
            let separator = if body.ends_with('[') { "\n" } else { ",\n" };
            format!("{body}{separator}{run}\n{FILE_TAIL}")
        }
        Ok(_) => {
            eprintln!(
                "{path} exists but is not in this harness's format (reformatted or \
                 hand-edited?); refusing to overwrite it — move it aside or pass a \
                 different --out"
            );
            std::process::exit(1);
        }
        Err(_) => {
            format!("{{\n  \"methodology\": \"{METHODOLOGY}\",\n  \"runs\": [\n{run}\n{FILE_TAIL}")
        }
    };
    // Round-trip check: the file this harness writes must always be a valid
    // JSON document, or the next --gate run would fail on its own baseline.
    if let Err(e) = serde_json::from_str(&rendered) {
        eprintln!("internal error: rendered trajectory for {path} is not valid JSON: {e}");
        std::process::exit(1);
    }
    std::fs::write(path, rendered).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {path}");
}

/// Prunes a trajectory document down to the most recent `keep` runs per
/// label, preserving run order, and re-renders it in the exact shape
/// [`write_trajectory`] appends to. Returns the rendered document and the
/// number of runs dropped. The trajectory is append-only, so "most recent"
/// is positional: the last `keep` same-label entries survive.
fn prune_trajectory(text: &str, keep: usize) -> Result<(String, usize), String> {
    let doc = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let methodology = doc
        .get("methodology")
        .and_then(serde_json::Value::as_str)
        .ok_or("missing top-level \"methodology\" string")?;
    let runs = doc
        .get("runs")
        .and_then(serde_json::Value::as_array)
        .ok_or("missing top-level \"runs\" array")?;
    let mut labels = Vec::with_capacity(runs.len());
    for (i, run) in runs.iter().enumerate() {
        labels.push(
            run.get("label")
                .and_then(serde_json::Value::as_str)
                .ok_or_else(|| format!("run #{i} has no string \"label\""))?,
        );
    }
    let mut kept_per_label: BTreeMap<&str, usize> = BTreeMap::new();
    let mut keep_flags = vec![false; runs.len()];
    for i in (0..runs.len()).rev() {
        let count = kept_per_label.entry(labels[i]).or_insert(0);
        if *count < keep {
            keep_flags[i] = true;
            *count += 1;
        }
    }
    let mut kept = Vec::new();
    for (run, &keep_it) in runs.iter().zip(&keep_flags) {
        if keep_it {
            kept.push(
                serde_json::to_string(run).map_err(|e| format!("cannot re-render run: {e}"))?,
            );
        }
    }
    let dropped = runs.len() - kept.len();
    let methodology = serde_json::to_string(&serde_json::Value::String(methodology.to_owned()))
        .map_err(|e| format!("cannot re-render methodology: {e}"))?;
    let mut out = format!("{{\n  \"methodology\": {methodology},\n  \"runs\": [\n");
    if !kept.is_empty() {
        out.push_str("    ");
        out.push_str(&kept.join(",\n    "));
        out.push('\n');
    }
    out.push_str(FILE_TAIL);
    // The pruned file must still be exactly what `write_trajectory` splices
    // into, or the next run would refuse its own trajectory.
    if serde_json::from_str(&out).is_err()
        || !out.ends_with(FILE_TAIL)
        || !out.contains("\"runs\": [")
    {
        return Err("internal error: pruned trajectory lost the harness shape".to_owned());
    }
    Ok((out, dropped))
}

/// The `--prune` mode: rewrites the trajectory at `path` keeping the latest
/// `keep` runs per label.
fn prune_file(path: &str, keep: usize) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let (rendered, dropped) = prune_trajectory(&text, keep).unwrap_or_else(|e| {
        eprintln!("cannot prune {path}: {e}");
        std::process::exit(1);
    });
    std::fs::write(path, rendered).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!("pruned {path}: dropped {dropped} run(s), keeping the latest {keep} per label");
}

/// The `--trace` mode: replays the timeline scenario with the span tracer
/// attached (plus a closed-loop mmap leg for contrast), prints the per-layer
/// timeline table, and writes three artifacts next to `prefix`:
/// `<prefix>.trace.json` (Chrome `trace_event`, loadable in Perfetto or
/// `chrome://tracing`), `<prefix>.series.csv` and `<prefix>.series.json`
/// (the time-bucketed metrics registry of the open-loop leg). The exported
/// trace is re-parsed and must carry a span for every serving-spine layer —
/// a tracer that silently lost a layer would be worse than none.
fn run_trace(scale: &ScaleProfile, prefix: &str) {
    let spec = WorkloadSpec::by_name("rndRd").expect("known workload");
    let (metrics, telemetry) = timeline_traced_run(scale);
    println!(
        "traced hams-TE rndRd open-loop: arrivals={} served={} dropped={} spans={} ({} evicted)",
        metrics.arrivals,
        metrics.served,
        metrics.dropped,
        telemetry.recorder.len(),
        telemetry.recorder.dropped()
    );
    let mut mmap_telemetry = RunTelemetry::new();
    let mut mmap = PlatformKind::Mmap.build(scale);
    let mmap_metrics = run_workload_traced(mmap.as_mut(), spec, scale, &mut mmap_telemetry);
    println!(
        "traced mmap rndRd closed-loop: accesses={} spans={}",
        mmap_metrics.accesses,
        mmap_telemetry.recorder.len()
    );
    print_rows(
        "timeline (hams-TE rndRd open-loop)",
        &timeline_rows(&telemetry),
    );

    let trace = chrome_trace_json(&[
        (
            "hams-TE rndRd (open-loop)".to_owned(),
            telemetry.spans_sorted(),
        ),
        (
            "mmap rndRd (closed-loop)".to_owned(),
            mmap_telemetry.spans_sorted(),
        ),
    ]);
    let layers = validate_chrome_trace(&trace).unwrap_or_else(|e| {
        eprintln!("exported trace is structurally invalid: {e}");
        std::process::exit(1);
    });
    for layer in Layer::ALL {
        if !layers.iter().any(|l| l == layer.name()) {
            eprintln!(
                "exported trace has no {} spans (layers present: {layers:?})",
                layer.name()
            );
            std::process::exit(1);
        }
    }
    let writes = [
        (format!("{prefix}.trace.json"), trace),
        (format!("{prefix}.series.csv"), telemetry.registry.to_csv()),
        (
            format!("{prefix}.series.json"),
            telemetry.registry.to_json(),
        ),
    ];
    for (path, contents) in &writes {
        std::fs::write(path, contents).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
    println!(
        "trace covers all {} serving-spine layers; open in Perfetto (ui.perfetto.dev) or \
         chrome://tracing",
        Layer::ALL.len()
    );
}

/// The most recent run labelled `label` in a trajectory document, as
/// `(platform, workload, ns_per_access)` cells.
///
/// The document is parsed structurally (the `serde_json` shim), so a
/// malformed trajectory — bad JSON, a run without a string label, a cell
/// missing its fields — is a loud, positioned error instead of a silently
/// dropped cell. When labels repeat, the *last* matching run wins
/// deterministically: the trajectory file is append-only, so the latest
/// same-label entry is the most recent measurement.
fn baseline_cells(text: &str, label: &str) -> Result<Vec<(String, String, f64)>, String> {
    let doc = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let runs = doc
        .get("runs")
        .and_then(serde_json::Value::as_array)
        .ok_or("missing top-level \"runs\" array")?;
    let mut latest: Option<(usize, &serde_json::Value)> = None;
    for (i, run) in runs.iter().enumerate() {
        let run_label = run
            .get("label")
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| format!("run #{i} has no string \"label\""))?;
        if run_label == label {
            latest = Some((i, run));
        }
    }
    let Some((run_idx, run)) = latest else {
        return Ok(Vec::new());
    };
    let cells = run
        .get("cells")
        .and_then(serde_json::Value::as_array)
        .ok_or_else(|| format!("run #{run_idx} ({label:?}) has no \"cells\" array"))?;
    let mut out = Vec::with_capacity(cells.len());
    for (j, cell) in cells.iter().enumerate() {
        let field = |key: &str| {
            cell.get(key)
                .ok_or_else(|| format!("run #{run_idx} ({label:?}) cell #{j} is missing {key:?}"))
        };
        let platform = field("platform")?
            .as_str()
            .ok_or_else(|| format!("run #{run_idx} cell #{j}: \"platform\" is not a string"))?;
        let workload = field("workload")?
            .as_str()
            .ok_or_else(|| format!("run #{run_idx} cell #{j}: \"workload\" is not a string"))?;
        let ns = field("ns_per_access")?.as_f64().ok_or_else(|| {
            format!("run #{run_idx} cell #{j}: \"ns_per_access\" is not a number")
        })?;
        out.push((platform.to_owned(), workload.to_owned(), ns));
    }
    Ok(out)
}

/// Enforces the perf gate: every fresh cell with a committed counterpart in
/// the latest same-label baseline run must stay within [`GATE_RATIO`] of it.
/// A missing baseline file, label, or cell is reported but never fails the
/// gate — the first run of a new label cannot regress against anything. A
/// *malformed* baseline, on the other hand, always fails: a gate that
/// silently skipped corrupt cells would pass exactly when it mattered most.
fn enforce_gate(baseline_path: &str, label: &str, cells: &[Cell]) {
    let Ok(text) = std::fs::read_to_string(baseline_path) else {
        println!("gate: no baseline file {baseline_path}; passing by default");
        return;
    };
    let baseline = baseline_cells(&text, label).unwrap_or_else(|e| {
        eprintln!("gate: baseline {baseline_path} is malformed: {e}");
        std::process::exit(2);
    });
    if baseline.is_empty() {
        println!("gate: no run labelled {label:?} in {baseline_path}; passing by default");
        return;
    }
    let mut failures = Vec::new();
    for cell in cells {
        let Some((_, _, base_ns)) = baseline
            .iter()
            .find(|(p, w, _)| p == cell.platform && w == cell.workload)
        else {
            println!(
                "gate: {} {} has no committed baseline cell; skipping",
                cell.platform, cell.workload
            );
            continue;
        };
        let ratio = cell.ns_per_access / base_ns;
        let verdict = if ratio > GATE_RATIO { "FAIL" } else { "ok" };
        println!(
            "gate: {:<16} {:<6} {:>8.1} ns/access vs baseline {:>8.1} = {:.2}x [{verdict}]",
            cell.platform, cell.workload, cell.ns_per_access, base_ns, ratio
        );
        if ratio > GATE_RATIO {
            failures.push(format!(
                "{} {}: {:.1} ns/access is {:.2}x the committed {:.1} (limit {GATE_RATIO}x)",
                cell.platform, cell.workload, cell.ns_per_access, ratio, base_ns
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!("perf gate failed ({} cell(s) regressed):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("gate: all cells within {GATE_RATIO}x of the committed {label:?} baseline");
}

fn main() {
    let config = parse_args();
    if let Some(keep) = config.prune {
        prune_file(&config.out, keep);
        return;
    }
    let scale = scale_for(config.quick);
    println!(
        "throughput: label={} quick={} scaling={} openloop={} tenants={} faults={} trace={} \
         accesses={}",
        config.label,
        config.quick,
        config.scaling,
        config.openloop,
        config.tenants,
        config.faults,
        config.trace,
        scale.accesses
    );
    if config.trace {
        run_trace(&scale, &config.trace_out);
        return;
    }
    let (cells, reps) = if config.scaling {
        let reps = if config.quick { 1 } else { 3 };
        (measure_scaling(&scale, reps), reps)
    } else if config.openloop {
        let reps = if config.quick { 1 } else { 3 };
        (measure_openloop(&scale, reps), reps)
    } else if config.tenants {
        let reps = if config.quick { 1 } else { 3 };
        (measure_tenants(&scale, reps), reps)
    } else if config.faults {
        let reps = if config.quick { 1 } else { 3 };
        (measure_faults(&scale, reps), reps)
    } else if config.quick {
        let kinds = [
            PlatformKind::Mmap,
            PlatformKind::HamsTE,
            PlatformKind::Oracle,
        ];
        (measure(&kinds, &["rndRd", "rndWr"], &scale, 1), 1)
    } else {
        (
            measure(
                &PlatformKind::all(),
                &["seqRd", "rndRd", "seqWr", "rndWr"],
                &scale,
                3,
            ),
            3,
        )
    };
    if let Some(baseline) = &config.gate {
        enforce_gate(baseline, &config.label, &cells);
    }
    let run = render_run(&config.label, &scale, reps, &cells);
    write_trajectory(&config.out, &run);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(platform: &'static str, ns: f64) -> Cell {
        Cell {
            platform,
            workload: "rndRd",
            accesses: 100,
            best_wall_ns: (ns * 100.0) as u128,
            accesses_per_sec: 1e9 / ns,
            ns_per_access: ns,
        }
    }

    fn doc(runs: &str) -> String {
        format!("{{\n  \"methodology\": \"m\",\n  \"runs\": [\n{runs}\n  ]\n}}\n")
    }

    #[test]
    fn render_run_output_parses_structurally() {
        let scale = scale_for(true);
        let cells = [cell("mmap", 540.0), cell("hams-TE", 650.0)];
        let run = render_run("ci-smoke", &scale, 1, &cells);
        let parsed = baseline_cells(&doc(&run), "ci-smoke").unwrap();
        assert_eq!(
            parsed,
            vec![
                ("mmap".to_owned(), "rndRd".to_owned(), 540.0),
                ("hams-TE".to_owned(), "rndRd".to_owned(), 650.0),
            ]
        );
    }

    #[test]
    fn latest_same_label_run_wins_when_labels_repeat() {
        let scale = scale_for(true);
        let old = render_run("ci-smoke", &scale, 1, &[cell("mmap", 100.0)]);
        let other = render_run("nightly", &scale, 1, &[cell("mmap", 999.0)]);
        let new = render_run("ci-smoke", &scale, 1, &[cell("mmap", 200.0)]);
        let text = doc(&format!("{old},\n{other},\n{new}"));
        let parsed = baseline_cells(&text, "ci-smoke").unwrap();
        assert_eq!(parsed, vec![("mmap".to_owned(), "rndRd".to_owned(), 200.0)]);
    }

    #[test]
    fn missing_label_is_empty_not_an_error() {
        let scale = scale_for(true);
        let run = render_run("ci-smoke", &scale, 1, &[cell("mmap", 100.0)]);
        assert_eq!(baseline_cells(&doc(&run), "absent").unwrap(), vec![]);
    }

    #[test]
    fn malformed_cells_error_loudly_instead_of_dropping() {
        // The old line-oriented parser silently skipped cells whose fields it
        // could not slice out; the structural parser must refuse the run.
        let text = doc(
            "    {\"label\": \"ci-smoke\", \"cells\": [\n        \
             {\"platform\": \"mmap\", \"workload\": \"rndRd\", \"ns_per_access\": \"oops\"}\n    ]}",
        );
        let err = baseline_cells(&text, "ci-smoke").unwrap_err();
        assert!(err.contains("ns_per_access"), "unhelpful error: {err}");

        let missing = doc("    {\"label\": \"ci-smoke\", \"cells\": [{\"platform\": \"mmap\"}]}");
        assert!(baseline_cells(&missing, "ci-smoke").is_err());

        let unlabelled = doc("    {\"cells\": []}");
        let err = baseline_cells(&unlabelled, "ci-smoke").unwrap_err();
        assert!(err.contains("label"), "unhelpful error: {err}");

        let invalid = "not json at all";
        assert!(baseline_cells(invalid, "ci-smoke").is_err());
    }

    #[test]
    fn prune_keeps_the_latest_runs_per_label_in_order() {
        let scale = scale_for(true);
        let runs = [
            render_run("ci-smoke", &scale, 1, &[cell("mmap", 100.0)]),
            render_run("nightly", &scale, 1, &[cell("mmap", 900.0)]),
            render_run("ci-smoke", &scale, 1, &[cell("mmap", 200.0)]),
            render_run("ci-smoke", &scale, 1, &[cell("mmap", 300.0)]),
        ];
        let text = doc(&runs.join(",\n"));

        let (pruned, dropped) = prune_trajectory(&text, 1).unwrap();
        assert_eq!(dropped, 2);
        // The latest run of each label survives, original order preserved:
        // `nightly` (older) still precedes the final `ci-smoke`.
        assert_eq!(
            baseline_cells(&pruned, "ci-smoke").unwrap(),
            vec![("mmap".to_owned(), "rndRd".to_owned(), 300.0)]
        );
        assert_eq!(
            baseline_cells(&pruned, "nightly").unwrap(),
            vec![("mmap".to_owned(), "rndRd".to_owned(), 900.0)]
        );
        let nightly = pruned.find("nightly").unwrap();
        let smoke = pruned.find("ci-smoke").unwrap();
        assert!(nightly < smoke, "pruning reordered the surviving runs");

        let (wider, dropped) = prune_trajectory(&text, 2).unwrap();
        assert_eq!(dropped, 1);
        // With two kept per label the middle ci-smoke run survives, and the
        // latest one still wins as the gate baseline.
        assert_eq!(
            baseline_cells(&wider, "ci-smoke").unwrap(),
            vec![("mmap".to_owned(), "rndRd".to_owned(), 300.0)]
        );
        let run_count = |text: &str| {
            let doc = serde_json::from_str(text).unwrap();
            doc.get("runs")
                .and_then(serde_json::Value::as_array)
                .unwrap()
                .len()
        };
        assert_eq!(run_count(&pruned), 2);
        assert_eq!(run_count(&wider), 3);
    }

    #[test]
    fn pruned_trajectory_still_accepts_appends() {
        let scale = scale_for(true);
        let text = doc(&render_run("ci-smoke", &scale, 1, &[cell("mmap", 100.0)]));
        let (pruned, dropped) = prune_trajectory(&text, 3).unwrap();
        assert_eq!(dropped, 0);
        // The exact markers `write_trajectory` splices on.
        assert!(pruned.ends_with(FILE_TAIL));
        assert!(pruned.contains("\"runs\": ["));
        // And a subsequent append round-trips: splice the next run in the
        // same way `write_trajectory` does and re-parse.
        let next = render_run("ci-smoke", &scale, 1, &[cell("mmap", 110.0)]);
        let body = pruned.trim_end_matches(FILE_TAIL).trim_end().to_owned();
        let appended = format!("{body},\n{next}\n{FILE_TAIL}");
        assert_eq!(
            baseline_cells(&appended, "ci-smoke").unwrap(),
            vec![("mmap".to_owned(), "rndRd".to_owned(), 110.0)]
        );
    }

    #[test]
    fn prune_refuses_malformed_trajectories() {
        assert!(prune_trajectory("not json", 1).is_err());
        assert!(
            prune_trajectory("{\"runs\": []}", 1).is_err(),
            "no methodology"
        );
        assert!(
            prune_trajectory("{\"methodology\": \"m\", \"runs\": [{\"cells\": []}]}", 1).is_err(),
            "unlabelled run"
        );
    }
}
