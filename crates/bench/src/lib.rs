//! Figure and table regeneration for the HAMS reproduction.
//!
//! Each `figNN_*` function reproduces one figure of the paper's evaluation and
//! returns its data points as plain rows; the `figures` binary prints them and
//! the Criterion benches exercise them. Absolute values differ from the paper
//! (the substrate is a transaction-level simulator, not the authors' gem5 +
//! FPGA testbed); the relative ordering and approximate factors are what the
//! reproduction targets (see EXPERIMENTS.md).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BinaryHeap;
use std::fmt;

use hams_core::{ArrayState, FaultPlan, PersistMode, RebuildConfig};
use hams_flash::{SsdConfig, SsdDevice};
use hams_interconnect::{Ddr4Channel, Ddr4Config};
use hams_nvme::{NvmeCommand, PrpList};
use hams_platforms::{
    build_cxl_platform, build_fault_platform, build_raid_sweep_platform, fault_label,
    queue_sweep_label, register_hams_queue_sweep, register_hams_shard_sweep, run_grid,
    run_grid_with, run_matrix, run_tenant_set_open_loop, run_workload, run_workload_open_loop,
    run_workload_open_loop_traced, shard_sweep_label, HamsPlatform, MmapPlatform, OpenLoopConfig,
    OpenLoopMetrics, OpenLoopRecord, PlatformKind, PlatformRegistry, RunMetrics, ScaleProfile,
};
use hams_sim::parallel_map;
use hams_sim::{Histogram, Nanos};
use hams_telemetry::{Layer, RunTelemetry};
use hams_workloads::{
    ArrivalProcess, FioJob, FioPattern, TenantSet, TenantSpec, WorkloadClass, WorkloadSpec,
};

/// Scale used by the Criterion benches (small enough to keep `cargo bench`
/// under a few minutes).
#[must_use]
pub fn bench_scale() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 2048,
        accesses: 3_000,
        seed: 42,
    }
}

/// Scale used by the `figures` binary (larger, better statistics).
#[must_use]
pub fn figures_scale() -> ScaleProfile {
    ScaleProfile {
        capacity_divisor: 512,
        accesses: 20_000,
        seed: 42,
    }
}

/// Formats a floating-point cell compactly.
fn cell(x: f64) -> String {
    if x >= 1000.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

// ---------------------------------------------------------------------------
// Figure 5 — ULL-Flash vs NVMe SSD device characterisation
// ---------------------------------------------------------------------------

/// One data point of Fig. 5b/5c: a device × job × queue-depth measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCharacterizationRow {
    /// Device name (`ULL SSD` or `NVMe SSD`).
    pub device: String,
    /// Job label (`Seq Read`, `Rand Write`, …).
    pub job: String,
    /// I/O queue depth.
    pub io_depth: usize,
    /// Average request latency in microseconds (Fig. 5b).
    pub avg_latency_us: f64,
    /// Sustained bandwidth in MB/s (Fig. 5c).
    pub bandwidth_mb_s: f64,
}

impl fmt::Display for DeviceCharacterizationRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} {:<10} depth={:<3} lat={:>8}us bw={:>8}MB/s",
            self.device,
            self.job,
            self.io_depth,
            cell(self.avg_latency_us),
            cell(self.bandwidth_mb_s)
        )
    }
}

/// Replays a fio job against a device with a closed queue of `io_depth`
/// outstanding requests, returning (average latency, bandwidth). The
/// request buffer is caller-owned scratch ([`FioJob::requests_into`]), so a
/// sweep replaying many jobs fills one vector instead of allocating a fresh
/// one per job.
fn replay_fio(
    ssd: &mut SsdDevice,
    job: &FioJob,
    requests: usize,
    seed: u64,
    reqs: &mut Vec<hams_workloads::IoRequest>,
) -> (Nanos, f64) {
    job.requests_into(seed, requests, reqs);
    let mut outstanding: BinaryHeap<std::cmp::Reverse<Nanos>> = BinaryHeap::new();
    let mut now = Nanos::ZERO;
    let mut total_latency = Nanos::ZERO;
    let mut makespan = Nanos::ZERO;
    for r in reqs.iter() {
        while outstanding.len() >= job.io_depth {
            let std::cmp::Reverse(done) = outstanding.pop().expect("non-empty");
            now = now.max(done);
        }
        let cmd = if r.is_write {
            NvmeCommand::write(1, r.offset / 4096, r.bytes, PrpList::single(0))
        } else {
            NvmeCommand::read(1, r.offset / 4096, r.bytes, PrpList::single(0))
        };
        let completion = ssd.service(&cmd, now).map(|c| c.finished_at).unwrap_or(now);
        total_latency += completion - now;
        makespan = makespan.max(completion);
        outstanding.push(std::cmp::Reverse(completion));
    }
    let avg = if reqs.is_empty() {
        Nanos::ZERO
    } else {
        total_latency / reqs.len() as u64
    };
    let bytes = reqs.len() as u64 * job.request_bytes;
    let bw = bytes as f64 / makespan.as_secs_f64().max(1e-12) / 1e6;
    (avg, bw)
}

/// Pre-writes the exercised span so that reads touch programmed flash pages.
fn precondition(ssd: &mut SsdDevice, span_bytes: u64, request_bytes: u64) {
    let pages = (span_bytes / request_bytes).min(4096);
    for p in 0..pages {
        let cmd = NvmeCommand::write(
            1,
            p * request_bytes / 4096,
            request_bytes,
            PrpList::single(0),
        );
        let _ = ssd.service(&cmd.with_fua(true), Nanos::ZERO);
    }
}

/// Fig. 5b/5c: latency and bandwidth of ULL-Flash and a conventional NVMe SSD
/// for the four fio corners across queue depths.
#[must_use]
pub fn fig05_device_characterization(
    depths: &[usize],
    requests: usize,
) -> Vec<DeviceCharacterizationRow> {
    let mut rows = Vec::new();
    let mut reqs = Vec::with_capacity(requests);
    for (device, config) in [
        ("ULL SSD", SsdConfig::ull_flash()),
        ("NVMe SSD", SsdConfig::nvme_750()),
    ] {
        for &depth in depths {
            for job in FioJob::figure5_jobs(depth) {
                let mut job = job;
                job.span_bytes = 64 * 1024 * 1024;
                let mut ssd = SsdDevice::new(config);
                precondition(&mut ssd, job.span_bytes, job.request_bytes);
                let (lat, bw) = replay_fio(&mut ssd, &job, requests, 7, &mut reqs);
                rows.push(DeviceCharacterizationRow {
                    device: device.to_owned(),
                    job: job.label(),
                    io_depth: depth,
                    avg_latency_us: lat.as_micros_f64(),
                    bandwidth_mb_s: bw,
                });
            }
        }
    }
    rows
}

/// Fig. 5a: average 4 KB access latency of DDR4 versus ULL-Flash, in
/// microseconds, as `(ddr4_read, ddr4_write, ull_read, ull_write)`.
#[must_use]
pub fn fig05a_4kb_access() -> (f64, f64, f64, f64) {
    let ddr = Ddr4Channel::new(Ddr4Config::ddr4_2133());
    // A 4 KB DDR4 access at the user level costs a few round trips; the paper
    // measured ~2.4 µs read / ~5.6 µs write on its testbed (software included);
    // the device-level number here is the bus service time.
    let ddr4_read = ddr.service_time(4096).as_micros_f64();
    let ddr4_write = ddr.service_time(4096).as_micros_f64() * 1.3;

    let mut ssd = SsdDevice::new(SsdConfig::ull_flash());
    precondition(&mut ssd, 1 << 20, 4096);
    let read_job = FioJob::four_kib(FioPattern::Random, false, 1);
    let write_job = FioJob::four_kib(FioPattern::Random, true, 1);
    let mut read_job = read_job;
    read_job.span_bytes = 1 << 20;
    let mut write_job = write_job;
    write_job.span_bytes = 1 << 20;
    let mut reqs = Vec::with_capacity(256);
    let (r, _) = replay_fio(&mut ssd, &read_job, 256, 3, &mut reqs);
    let (w, _) = replay_fio(&mut ssd, &write_job, 256, 4, &mut reqs);
    (ddr4_read, ddr4_write, r.as_micros_f64(), w.as_micros_f64())
}

// ---------------------------------------------------------------------------
// Figure 6 — MMF-based system performance per SSD class
// ---------------------------------------------------------------------------

/// One bar of Fig. 6: an (SSD, workload) pair under the MMF system.
#[derive(Debug, Clone, PartialEq)]
pub struct MmfRow {
    /// Backing SSD (`SATA SSD`, `NVMe SSD`, `ULL-Flash`).
    pub ssd: String,
    /// Workload name.
    pub workload: String,
    /// mmap-benchmark bandwidth in MB/s (Fig. 6a) — meaningful for the
    /// microbenchmark workloads.
    pub bandwidth_mb_s: f64,
    /// SQLite per-operation latency in microseconds (Fig. 6b) — meaningful
    /// for the SQLite workloads.
    pub op_latency_us: f64,
}

impl fmt::Display for MmfRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<8} bw={:>9}MB/s  op-lat={:>9}us",
            self.ssd,
            self.workload,
            cell(self.bandwidth_mb_s),
            cell(self.op_latency_us)
        )
    }
}

/// Fig. 6: MMF-system performance with SATA, NVMe and ULL-Flash SSDs.
#[must_use]
pub fn fig06_mmf_performance(scale: &ScaleProfile, workloads: &[&str]) -> Vec<MmfRow> {
    let ssds = [
        ("SATA SSD", SsdConfig::sata_ssd()),
        ("NVMe SSD", SsdConfig::nvme_750()),
        ("ULL-Flash", SsdConfig::ull_flash()),
    ];
    let cells: Vec<(&str, SsdConfig, &str, WorkloadSpec)> = ssds
        .iter()
        .flat_map(|(ssd_name, ssd_cfg)| {
            workloads.iter().filter_map(move |name| {
                WorkloadSpec::by_name(name).map(|spec| (*ssd_name, *ssd_cfg, *name, spec))
            })
        })
        .collect();
    parallel_map(&cells, |(ssd_name, ssd_cfg, name, spec)| {
        let mut platform = MmapPlatform::new("mmap", *ssd_cfg, scale.cache_bytes());
        let m = run_workload(&mut platform, *spec, scale);
        let secs = m.total_time.as_secs_f64().max(1e-12);
        let bytes = m.accesses * spec.access_bytes;
        MmfRow {
            ssd: (*ssd_name).to_owned(),
            workload: (*name).to_owned(),
            bandwidth_mb_s: bytes as f64 / secs / 1e6,
            op_latency_us: if m.ops_per_sec > 0.0 {
                1e6 / m.ops_per_sec
            } else {
                0.0
            },
        }
    })
}

// ---------------------------------------------------------------------------
// Figure 7 — software overheads and bypass IPC
// ---------------------------------------------------------------------------

/// One row of Fig. 7a: the execution-time decomposition of the MMF system.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftwareOverheadRow {
    /// Workload name.
    pub workload: String,
    /// Fraction of execution spent in mmap processing (page fault, context
    /// switches).
    pub mmap_fraction: f64,
    /// Fraction spent in the I/O stack (filesystem, blk-mq, NVMe driver).
    pub io_stack_fraction: f64,
    /// Fraction spent waiting on the SSD.
    pub ssd_fraction: f64,
    /// Fraction spent computing.
    pub cpu_fraction: f64,
    /// Performance degradation versus an NVDIMM-only system, in percent.
    pub degradation_vs_nvdimm_pct: f64,
}

impl fmt::Display for SoftwareOverheadRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} mmap={:>5.2} io={:>5.2} ssd={:>5.2} cpu={:>5.2} degradation={:>6.1}%",
            self.workload,
            self.mmap_fraction,
            self.io_stack_fraction,
            self.ssd_fraction,
            self.cpu_fraction,
            self.degradation_vs_nvdimm_pct
        )
    }
}

/// Fig. 7a: execution-time breakdown of the MMF system and its degradation
/// against an NVDIMM-only (oracle) system.
#[must_use]
pub fn fig07a_software_overheads(
    scale: &ScaleProfile,
    workloads: &[&str],
) -> Vec<SoftwareOverheadRow> {
    // The "os" component of the runner lumps mmap and I/O-stack time; split it
    // by the cost model's proportions.
    let mmf = hams_host::MmfCostModel::linux_4_9();
    let fault = mmf.fault_overhead(4096);
    let mmap_share = fault.fraction("mmap");
    let mut rows = Vec::new();
    for name in workloads {
        let Some(spec) = WorkloadSpec::by_name(name) else {
            continue;
        };
        let mut mmap_platform = PlatformKind::Mmap.build(scale);
        let m = run_workload(mmap_platform.as_mut(), spec, scale);
        let mut oracle = PlatformKind::Oracle.build(scale);
        let o = run_workload(oracle.as_mut(), spec, scale);
        let os = m.exec_breakdown.fraction("os");
        rows.push(SoftwareOverheadRow {
            workload: (*name).to_owned(),
            mmap_fraction: os * mmap_share,
            io_stack_fraction: os * (1.0 - mmap_share),
            ssd_fraction: m.exec_breakdown.fraction("ssd"),
            cpu_fraction: m.exec_breakdown.fraction("app"),
            degradation_vs_nvdimm_pct: (1.0
                - m.pages_per_sec / o.pages_per_sec.max(f64::MIN_POSITIVE))
                * 100.0,
        });
    }
    rows
}

/// One group of Fig. 7b: IPC of the three bypass strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct BypassIpcRow {
    /// Workload name.
    pub workload: String,
    /// IPC with an NVDIMM-only memory system.
    pub nvdimm_ipc: f64,
    /// IPC with ULL-Flash directly serving loads/stores.
    pub ull_ipc: f64,
    /// IPC with ULL-Flash behind a small page buffer.
    pub ull_buff_ipc: f64,
}

impl fmt::Display for BypassIpcRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} NVDIMM={:.4} ULL={:.4} ULL-buff={:.4}",
            self.workload, self.nvdimm_ipc, self.ull_ipc, self.ull_buff_ipc
        )
    }
}

/// Fig. 7b: IPC of bypassing the storage stack with (1) NVDIMM only, (2) raw
/// ULL-Flash, (3) ULL-Flash plus a small page buffer.
#[must_use]
pub fn fig07b_bypass_ipc(scale: &ScaleProfile, workloads: &[&str]) -> Vec<BypassIpcRow> {
    let mut rows = Vec::new();
    for name in workloads {
        let Some(spec) = WorkloadSpec::by_name(name) else {
            continue;
        };
        let mut nvdimm = PlatformKind::Oracle.build(scale);
        let mut ull = PlatformKind::FlatFlashP.build(scale);
        let mut ull_buff = PlatformKind::FlatFlashM.build(scale);
        rows.push(BypassIpcRow {
            workload: (*name).to_owned(),
            nvdimm_ipc: run_workload(nvdimm.as_mut(), spec, scale).ipc,
            ull_ipc: run_workload(ull.as_mut(), spec, scale).ipc,
            ull_buff_ipc: run_workload(ull_buff.as_mut(), spec, scale).ipc,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 10a — DMA / interface share of AMAT
// ---------------------------------------------------------------------------

/// One bar of Fig. 10a.
#[derive(Debug, Clone, PartialEq)]
pub struct DmaOverheadRow {
    /// Workload name.
    pub workload: String,
    /// Fraction of baseline-HAMS memory delay spent on the DMA interface.
    pub dma_fraction: f64,
}

impl fmt::Display for DmaOverheadRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} dma-fraction={:.3}",
            self.workload, self.dma_fraction
        )
    }
}

/// Fig. 10a: the share of the loosely-coupled HAMS memory access time spent
/// moving data between the NVMe and DDR4 controllers.
#[must_use]
pub fn fig10_dma_overhead(scale: &ScaleProfile, workloads: &[&str]) -> Vec<DmaOverheadRow> {
    let mut rows = Vec::new();
    for name in workloads {
        let Some(spec) = WorkloadSpec::by_name(name) else {
            continue;
        };
        let mut le = PlatformKind::HamsLE.build(scale);
        let m = run_workload(le.as_mut(), spec, scale);
        rows.push(DmaOverheadRow {
            workload: (*name).to_owned(),
            dma_fraction: m.memory_delay.fraction("dma"),
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// Figure 16 — application performance across all platforms
// ---------------------------------------------------------------------------

/// One cell of Fig. 16: a (platform, workload) throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct ApplicationPerfRow {
    /// Platform label.
    pub platform: String,
    /// Workload name.
    pub workload: String,
    /// Throughput in the unit the paper plots (K pages/s or ops/s).
    pub throughput: f64,
    /// Unit label.
    pub unit: &'static str,
}

impl fmt::Display for ApplicationPerfRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:<8} {:>12} {}",
            self.platform,
            self.workload,
            cell(self.throughput),
            self.unit
        )
    }
}

/// Fig. 16: application performance of every platform on the given workloads.
#[must_use]
pub fn fig16_application_performance(
    scale: &ScaleProfile,
    kinds: &[PlatformKind],
    workloads: &[&str],
) -> Vec<ApplicationPerfRow> {
    let specs: Vec<WorkloadSpec> = workloads
        .iter()
        .filter_map(|name| WorkloadSpec::by_name(name))
        .collect();
    // One independent, seeded simulation per (workload, platform) cell, fanned
    // out across cores; results are byte-identical to the serial loop.
    let grid = run_grid(kinds, &specs, scale);
    grid.into_iter()
        .zip(
            specs
                .iter()
                .flat_map(|spec| kinds.iter().map(move |k| (spec, k))),
        )
        .map(|(m, (spec, kind))| {
            let (throughput, unit) = match spec.class {
                WorkloadClass::Sqlite => (m.paper_throughput(spec.class), "ops/s"),
                _ => (m.paper_throughput(spec.class), "K pages/s"),
            };
            ApplicationPerfRow {
                platform: kind.label().to_owned(),
                workload: spec.name.to_owned(),
                throughput,
                unit,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Figures 17/18/19 — breakdowns
// ---------------------------------------------------------------------------

/// One stacked bar of Figs. 17–19: named components for a (platform,
/// workload) pair, normalised to a reference platform's total.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Platform label.
    pub platform: String,
    /// Workload name.
    pub workload: String,
    /// `(component, value)` pairs; values are normalised to the reference
    /// platform's total for the same workload.
    pub components: Vec<(String, f64)>,
}

impl fmt::Display for BreakdownRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<12} {:<8}", self.platform, self.workload)?;
        for (name, v) in &self.components {
            write!(f, " {name}={v:.3}")?;
        }
        Ok(())
    }
}

fn normalized_rows(
    results: &[(String, RunMetrics)],
    reference: &str,
    extract: impl Fn(&RunMetrics) -> Vec<(String, f64)>,
    total: impl Fn(&RunMetrics) -> f64,
) -> Vec<BreakdownRow> {
    let reference_total = results
        .iter()
        .find(|(p, _)| p == reference)
        .map(|(_, m)| total(m))
        .unwrap_or(1.0)
        .max(f64::MIN_POSITIVE);
    results
        .iter()
        .map(|(platform, m)| BreakdownRow {
            platform: platform.clone(),
            workload: m.workload.clone(),
            components: extract(m)
                .into_iter()
                .map(|(k, v)| (k, v / reference_total))
                .collect(),
        })
        .collect()
}

/// Fig. 17: execution-time breakdown (`os` / `ssd` / `app`) of mmap and the
/// four HAMS modes, normalised to mmap.
#[must_use]
pub fn fig17_execution_breakdown(scale: &ScaleProfile, workload: &str) -> Vec<BreakdownRow> {
    let Some(spec) = WorkloadSpec::by_name(workload) else {
        return Vec::new();
    };
    let kinds = PlatformKind::breakdown_set();
    let results: Vec<(String, RunMetrics)> = kinds
        .iter()
        .map(|k| k.label().to_owned())
        .zip(run_matrix(&kinds, spec, scale))
        .collect();
    normalized_rows(
        &results,
        "mmap",
        |m| {
            ["os", "ssd", "app"]
                .iter()
                .map(|c| {
                    (
                        (*c).to_owned(),
                        m.exec_breakdown.component(c).as_nanos() as f64,
                    )
                })
                .collect()
        },
        |m| m.exec_breakdown.total().as_nanos() as f64,
    )
}

/// Fig. 18: memory-delay breakdown (`nvdimm` / `dma` / `ssd`) of the four
/// HAMS modes, normalised to `hams-LP`.
#[must_use]
pub fn fig18_memory_delay(scale: &ScaleProfile, workload: &str) -> Vec<BreakdownRow> {
    let Some(spec) = WorkloadSpec::by_name(workload) else {
        return Vec::new();
    };
    let kinds = PlatformKind::hams_set();
    let results: Vec<(String, RunMetrics)> = kinds
        .iter()
        .map(|k| k.label().to_owned())
        .zip(run_matrix(&kinds, spec, scale))
        .collect();
    normalized_rows(
        &results,
        "hams-LP",
        |m| {
            ["nvdimm", "dma", "ssd"]
                .iter()
                .map(|c| {
                    (
                        (*c).to_owned(),
                        m.memory_delay.component(c).as_nanos() as f64,
                    )
                })
                .collect()
        },
        |m| m.memory_delay.total().as_nanos() as f64,
    )
}

/// Fig. 19: whole-system energy breakdown (`cpu` / `nvdimm` / `internal_dram`
/// / `znand`) of mmap and the four HAMS modes, normalised to mmap.
#[must_use]
pub fn fig19_energy(scale: &ScaleProfile, workload: &str) -> Vec<BreakdownRow> {
    let Some(spec) = WorkloadSpec::by_name(workload) else {
        return Vec::new();
    };
    let kinds = PlatformKind::breakdown_set();
    let results: Vec<(String, RunMetrics)> = kinds
        .iter()
        .map(|k| k.label().to_owned())
        .zip(run_matrix(&kinds, spec, scale))
        .collect();
    normalized_rows(
        &results,
        "mmap",
        |m| {
            ["cpu", "nvdimm", "internal_dram", "znand"]
                .iter()
                .map(|c| ((*c).to_owned(), m.energy.component_joules(c)))
                .collect()
        },
        |m| m.energy.total_joules(),
    )
}

// ---------------------------------------------------------------------------
// Figure 20 — sensitivity studies
// ---------------------------------------------------------------------------

/// One point of Fig. 20a: SQLite throughput of hams-TE at a MoS page size.
#[derive(Debug, Clone, PartialEq)]
pub struct PageSizeRow {
    /// Workload name.
    pub workload: String,
    /// MoS page size in bytes.
    pub page_size: u64,
    /// Throughput in ops/s.
    pub ops_per_sec: f64,
}

impl fmt::Display for PageSizeRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} page={:>7}B ops/s={:>10}",
            self.workload,
            self.page_size,
            cell(self.ops_per_sec)
        )
    }
}

/// Fig. 20a: hams-TE throughput across MoS page sizes.
#[must_use]
pub fn fig20a_page_sizes(
    scale: &ScaleProfile,
    workload: &str,
    page_sizes: &[u64],
) -> Vec<PageSizeRow> {
    let Some(spec) = WorkloadSpec::by_name(workload) else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for &page_size in page_sizes {
        let base = hams_core::HamsConfig::tight(PersistMode::Extend);
        let mut ssd = base.ssd;
        ssd.dram_capacity_bytes = 0;
        let config = hams_core::HamsConfig {
            nvdimm: hams_nvdimm::NvdimmConfig {
                capacity_bytes: scale.cache_bytes(),
                ..hams_nvdimm::NvdimmConfig::hpe_8gb()
            },
            pinned: hams_nvdimm::PinnedRegionLayout::tiny_for_tests(),
            ssd,
            ..base
        }
        .with_mos_page_size(page_size);
        let mut platform = HamsPlatform::from_config(config);
        let m = run_workload(&mut platform, spec, scale);
        rows.push(PageSizeRow {
            workload: workload.to_owned(),
            page_size,
            ops_per_sec: m.ops_per_sec,
        });
    }
    rows
}

/// One bar of Fig. 20b: throughput at an enlarged footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct LargeFootprintRow {
    /// Platform label.
    pub platform: String,
    /// Workload name.
    pub workload: String,
    /// Throughput in ops/s.
    pub ops_per_sec: f64,
}

impl fmt::Display for LargeFootprintRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} {:<8} ops/s={:>10}",
            self.platform,
            self.workload,
            cell(self.ops_per_sec)
        )
    }
}

/// Fig. 20b: mmap vs hams-TE vs oracle with the dataset grown 4× (the paper
/// grows it from 11 GB to 44 GB).
#[must_use]
pub fn fig20b_large_footprint(scale: &ScaleProfile, workload: &str) -> Vec<LargeFootprintRow> {
    let Some(spec) = WorkloadSpec::by_name(workload) else {
        return Vec::new();
    };
    let grown = spec.with_dataset_bytes(spec.dataset_bytes * 4);
    let kinds = [
        PlatformKind::Mmap,
        PlatformKind::HamsTE,
        PlatformKind::Oracle,
    ];
    kinds
        .iter()
        .zip(run_matrix(&kinds, grown, scale))
        .map(|(k, m)| LargeFootprintRow {
            platform: k.label().to_owned(),
            workload: workload.to_owned(),
            ops_per_sec: m.ops_per_sec,
        })
        .collect()
}

/// One point of the queue-count sensitivity figure: hams-TE throughput and
/// mean access latency at an NVMe queue-pair count.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueSensitivityRow {
    /// Workload name.
    pub workload: String,
    /// Number of NVMe submission/completion queue pairs.
    pub queues: u16,
    /// Mean end-to-end access latency in microseconds.
    pub mean_latency_us: f64,
    /// Throughput in K pages per second.
    pub kpages_per_sec: f64,
}

impl fmt::Display for QueueSensitivityRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} queues={:<2} mean-lat={:>8}us {:>10} Kpages/s",
            self.workload,
            self.queues,
            cell(self.mean_latency_us),
            cell(self.kpages_per_sec)
        )
    }
}

/// Queue-count sensitivity of hams-TE: the `hams-TE-q{n}` registry entries
/// (32 KB MoS pages, striped fills, MSI coalescing) swept over
/// `queue_counts` on one workload through the parallel grid. More queues
/// let the controller stripe each page fill across more submission rings,
/// overlapping the device firmware walks, so mean latency falls until the
/// flash channels saturate.
#[must_use]
pub fn fig21_queue_sensitivity(
    scale: &ScaleProfile,
    workload: &str,
    queue_counts: &[u16],
) -> Vec<QueueSensitivityRow> {
    let Some(spec) = WorkloadSpec::by_name(workload) else {
        return Vec::new();
    };
    let mut registry = PlatformRegistry::standard();
    register_hams_queue_sweep(&mut registry, queue_counts);
    let labels: Vec<String> = queue_counts.iter().map(|&n| queue_sweep_label(n)).collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let results = run_grid_with(&registry, &label_refs, &[spec], scale);
    queue_counts
        .iter()
        .zip(results)
        .map(|(&queues, m)| QueueSensitivityRow {
            workload: workload.to_owned(),
            queues,
            mean_latency_us: m.total_time.as_micros_f64() / m.accesses.max(1) as f64,
            kpages_per_sec: m.pages_per_sec / 1_000.0,
        })
        .collect()
}

/// One point of the shard-count sensitivity study: hams-TE metrics at a
/// tag-directory bank count.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSensitivityRow {
    /// Workload name.
    pub workload: String,
    /// Number of independent tag-directory banks.
    pub shards: u16,
    /// Mean end-to-end access latency in microseconds.
    pub mean_latency_us: f64,
    /// Throughput in K pages per second.
    pub kpages_per_sec: f64,
}

impl fmt::Display for ShardSensitivityRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} shards={:<2} mean-lat={:>8}us {:>10} Kpages/s",
            self.workload,
            self.shards,
            cell(self.mean_latency_us),
            cell(self.kpages_per_sec)
        )
    }
}

/// Shard-count sensitivity of hams-TE: the `hams-TE-s{n}` registry entries
/// swept over `shard_counts` on one workload through the parallel grid.
/// Unlike the queue sweep, the simulated timing is pinned *flat*: the shard
/// shape is pure routing, so every count must report byte-identical metrics
/// (multi-shard throughput is therefore trivially ≥ single-shard — the win
/// is host-side, banks probe without a global ordering point). The function
/// asserts the invariance so a bench run doubles as a contract check.
///
/// # Panics
///
/// Panics if any multi-shard cell diverges from the single-shard baseline —
/// a shard-invariance violation.
#[must_use]
pub fn fig_shard_sensitivity(
    scale: &ScaleProfile,
    workload: &str,
    shard_counts: &[u16],
) -> Vec<ShardSensitivityRow> {
    let Some(spec) = WorkloadSpec::by_name(workload) else {
        return Vec::new();
    };
    let mut registry = PlatformRegistry::standard();
    register_hams_shard_sweep(&mut registry, shard_counts);
    let labels: Vec<String> = shard_counts.iter().map(|&n| shard_sweep_label(n)).collect();
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    let results = run_grid_with(&registry, &label_refs, &[spec], scale);
    if let Some(first) = results.first() {
        for m in &results {
            assert_eq!(
                m, first,
                "shard-invariance violation: a shard count changed the metrics"
            );
        }
    }
    shard_counts
        .iter()
        .zip(results)
        .map(|(&shards, m)| ShardSensitivityRow {
            workload: workload.to_owned(),
            shards,
            mean_latency_us: m.total_time.as_micros_f64() / m.accesses.max(1) as f64,
            kpages_per_sec: m.pages_per_sec / 1_000.0,
        })
        .collect()
}

/// One point of the archive device-scaling study: hams-TE metrics at a
/// RAID-0 (or CXL-attached) archive-set size, with the per-device traffic
/// split.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceScalingRow {
    /// Workload name.
    pub workload: String,
    /// Backend label (`raid0` or `cxl`).
    pub backend: &'static str,
    /// Number of ULL-Flash devices in the archive set.
    pub devices: u16,
    /// Mean end-to-end access latency in microseconds.
    pub mean_latency_us: f64,
    /// Throughput in K pages per second.
    pub kpages_per_sec: f64,
    /// Bytes moved (read + written) per device, in device order. Sums to
    /// the single-device run's total by the capacity-unified contract.
    pub per_device_bytes: Vec<u64>,
}

impl fmt::Display for DeviceScalingRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<8} {:<5} devices={:<2} mean-lat={:>8}us {:>10} Kpages/s  dev-bytes=[",
            self.workload,
            self.backend,
            self.devices,
            cell(self.mean_latency_us),
            cell(self.kpages_per_sec)
        )?;
        for (i, b) in self.per_device_bytes.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "]")
    }
}

/// Archive device scaling of hams-TE (`figures -- fig23`): the
/// `hams-TE-d{n}` RAID-0 sweep over `device_counts` on one workload, plus
/// the CXL-attached d4 variant. Each fill's stripe commands fan out across
/// the archive set's devices (LBA-granularity stripes), so random-read
/// latency falls as the device count grows — while the *work* stays fixed:
/// the unified address space is one archive's capacity, every command lands
/// on the device owning its stripe, and the function asserts that every
/// run's per-device byte totals sum to the sweep baseline's (the first
/// entry of `device_counts` — `d1` in the standard sweep, making the
/// baseline the single-device totals).
///
/// # Panics
///
/// Panics if a run's summed per-device traffic diverges from the sweep
/// baseline's totals — a stripe-routing violation.
#[must_use]
pub fn fig_device_scaling(
    scale: &ScaleProfile,
    workload: &str,
    device_counts: &[u16],
) -> Vec<DeviceScalingRow> {
    let Some(spec) = WorkloadSpec::by_name(workload) else {
        return Vec::new();
    };
    // Built concretely (not through the boxed registry) so the per-device
    // archive stats stay readable; the registry entries use the same
    // constructor, so the grid rows and these rows are the same cells.
    let mut rows = Vec::new();
    let mut baseline_totals: Option<(u64, u64)> = None;
    let mut run = |backend: &'static str, devices: u16, platform: &mut HamsPlatform| {
        let m = run_workload(platform, spec, scale);
        let stats = platform.controller().archive().device_stats();
        let per_device_bytes: Vec<u64> = stats
            .iter()
            .map(|s| s.bytes_read + s.bytes_written)
            .collect();
        let totals = (
            stats.iter().map(|s| s.bytes_read).sum::<u64>(),
            stats.iter().map(|s| s.bytes_written).sum::<u64>(),
        );
        match baseline_totals {
            None => baseline_totals = Some(totals),
            Some(reference) => assert_eq!(
                totals, reference,
                "{backend} d{devices}: per-device traffic no longer sums to the \
                 sweep baseline's totals — stripe routing dropped or duplicated work"
            ),
        }
        rows.push(DeviceScalingRow {
            workload: workload.to_owned(),
            backend,
            devices,
            mean_latency_us: m.total_time.as_micros_f64() / m.accesses.max(1) as f64,
            kpages_per_sec: m.pages_per_sec / 1_000.0,
            per_device_bytes,
        });
    };
    for &devices in device_counts {
        run(
            "raid0",
            devices,
            &mut build_raid_sweep_platform(scale, devices),
        );
    }
    run("cxl", 4, &mut build_cxl_platform(scale));
    rows
}

// ---------------------------------------------------------------------------
// Figure 24 — open-loop latency vs offered load (this reproduction's study)
// ---------------------------------------------------------------------------

/// Maximum drop fraction an offered load may show and still count as
/// sustained.
pub const SUSTAINABLE_MAX_DROP_FRACTION: f64 = 0.001;

/// Minimum achieved/offered throughput ratio for an offered load to count as
/// sustained.
pub const SUSTAINABLE_MIN_ACHIEVED_FRACTION: f64 = 0.90;

/// One point of the fig24 sweep: a platform serving one offered load
/// open-loop, with its sojourn tail.
#[derive(Debug, Clone, PartialEq)]
pub struct OpenLoopRow {
    /// Platform label.
    pub platform: String,
    /// Workload name.
    pub workload: String,
    /// Offered load as a fraction of the platform's calibrated closed-loop
    /// service rate.
    pub offered_frac: f64,
    /// Offered arrival rate in requests per second.
    pub offered_per_sec: f64,
    /// Achieved service rate in requests per second of simulated time.
    pub achieved_per_sec: f64,
    /// Arrivals rejected by the bounded admission queue.
    pub dropped: u64,
    /// Total arrivals offered.
    pub arrivals: u64,
    /// Mean sojourn time (queueing + service) in microseconds.
    pub mean_us: f64,
    /// Median sojourn time (queueing + service) in microseconds.
    pub p50_us: f64,
    /// 99th-percentile sojourn time in microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile sojourn time in microseconds.
    pub p999_us: f64,
    /// Whether the platform sustained this offered load (see
    /// [`openloop_sustainable`]).
    pub sustainable: bool,
}

impl fmt::Display for OpenLoopRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:<6} offered={:>4.2}x ({:>10}/s) achieved={:>10}/s drops={:<5} \
             mean={:>8}us p50={:>8}us p99={:>8}us p999={:>8}us [{}]",
            self.platform,
            self.workload,
            self.offered_frac,
            cell(self.offered_per_sec),
            cell(self.achieved_per_sec),
            self.dropped,
            cell(self.mean_us),
            cell(self.p50_us),
            cell(self.p99_us),
            cell(self.p999_us),
            if self.sustainable { "ok" } else { "SATURATED" }
        )
    }
}

/// Whether an offered load counts as sustained: (almost) nothing dropped and
/// achieved throughput within [`SUSTAINABLE_MIN_ACHIEVED_FRACTION`] of
/// offered.
#[must_use]
pub fn openloop_sustainable(
    offered_per_sec: f64,
    achieved_per_sec: f64,
    dropped: u64,
    arrivals: u64,
) -> bool {
    let drop_frac = if arrivals == 0 {
        0.0
    } else {
        dropped as f64 / arrivals as f64
    };
    drop_frac <= SUSTAINABLE_MAX_DROP_FRACTION
        && achieved_per_sec >= SUSTAINABLE_MIN_ACHIEVED_FRACTION * offered_per_sec
}

/// Fig. 24: open-loop sojourn latency versus offered load. Each platform is
/// first calibrated closed-loop (its service rate with one outstanding
/// batch), then served Poisson arrivals at every fraction of that rate in
/// `fractions`, through the bounded admission queue. Rows are platform-major
/// in the order of `kinds`, ascending fraction within a platform — the shape
/// [`fig24_knee`] expects.
#[must_use]
pub fn fig24_latency_vs_load(
    scale: &ScaleProfile,
    workload: &str,
    kinds: &[PlatformKind],
    fractions: &[f64],
) -> Vec<OpenLoopRow> {
    let Some(spec) = WorkloadSpec::by_name(workload) else {
        return Vec::new();
    };
    let per_platform = parallel_map(kinds, |kind| {
        let service_rate = {
            let mut platform = kind.build(scale);
            let m = run_workload(platform.as_mut(), spec, scale);
            m.accesses as f64 / m.total_time.as_secs_f64().max(1e-12)
        };
        fractions
            .iter()
            .map(|&frac| {
                let mut platform = kind.build(scale);
                let config = OpenLoopConfig::poisson(frac * service_rate);
                let m = run_workload_open_loop(platform.as_mut(), spec, scale, &config);
                // One pass over the sojourn histogram resolves the mean and
                // every reported percentile together.
                let summary = m.sojourn.summary();
                let us = |f: fn(&hams_sim::HistogramSummary) -> Nanos| {
                    summary.as_ref().map_or(0.0, |s| f(s).as_micros_f64())
                };
                OpenLoopRow {
                    platform: kind.label().to_owned(),
                    workload: workload.to_owned(),
                    offered_frac: frac,
                    offered_per_sec: m.offered_rate_per_sec,
                    achieved_per_sec: m.achieved_per_sec(),
                    dropped: m.dropped,
                    arrivals: m.arrivals,
                    mean_us: us(|s| s.mean),
                    p50_us: us(|s| s.p50),
                    p99_us: us(|s| s.p99),
                    p999_us: us(|s| s.p999),
                    sustainable: openloop_sustainable(
                        m.offered_rate_per_sec,
                        m.achieved_per_sec(),
                        m.dropped,
                        m.arrivals,
                    ),
                }
            })
            .collect::<Vec<_>>()
    });
    per_platform.into_iter().flatten().collect()
}

/// The knee of one platform's latency-throughput curve: the index of the
/// last sustained offered load in a rising sweep (`None` when even the
/// lowest offered load saturates). `rows` must be one platform's points in
/// ascending offered-load order; the knee is the end of the leading
/// sustained prefix, so one unsustained point caps the curve even if a
/// higher load happens to look sustained again (noise past saturation).
#[must_use]
pub fn fig24_knee(rows: &[OpenLoopRow]) -> Option<usize> {
    rows.iter()
        .take_while(|r| r.sustainable)
        .count()
        .checked_sub(1)
}

/// Splits a platform-major fig24 sweep into `(platform, knee row)` pairs —
/// the per-platform max-sustainable-throughput summary the figure reports.
#[must_use]
pub fn fig24_knees(rows: &[OpenLoopRow]) -> Vec<(String, Option<OpenLoopRow>)> {
    let mut out: Vec<(String, Option<OpenLoopRow>)> = Vec::new();
    let mut start = 0;
    while start < rows.len() {
        let platform = rows[start].platform.clone();
        let end = rows[start..]
            .iter()
            .take_while(|r| r.platform == platform)
            .count()
            + start;
        let knee = fig24_knee(&rows[start..end]).map(|i| rows[start + i].clone());
        out.push((platform, knee));
        start = end;
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 25 — noisy-neighbour interference (this reproduction's study)
// ---------------------------------------------------------------------------

/// Offered load of the latency-sensitive victim tenant, as a fraction of the
/// platform's calibrated closed-loop service rate. Low enough that the victim
/// alone never queues; every tail inflation in the sweep is the antagonist's
/// doing.
pub const FIG25_VICTIM_FRACTION: f64 = 0.3;

/// One point of the fig25 sweep: a latency-sensitive victim and a
/// write-heavy antagonist sharing one platform's admission queue, at one
/// antagonist offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceRow {
    /// Platform label.
    pub platform: String,
    /// Victim tenant's workload name.
    pub victim_workload: String,
    /// Antagonist tenant's workload name.
    pub antagonist_workload: String,
    /// Antagonist offered load as a fraction of the platform's calibrated
    /// closed-loop service rate.
    pub antagonist_frac: f64,
    /// Victim's offered arrival rate in requests per second.
    pub victim_offered_per_sec: f64,
    /// Victim's achieved rate over its own simulated wall span.
    pub victim_achieved_per_sec: f64,
    /// Victim arrivals rejected by the shared admission queue.
    pub victim_dropped: u64,
    /// Victim mean sojourn time (queueing + service) in microseconds.
    pub victim_mean_us: f64,
    /// Victim median sojourn time in microseconds.
    pub victim_p50_us: f64,
    /// Victim 99th-percentile sojourn time in microseconds.
    pub victim_p99_us: f64,
    /// Victim 99.9th-percentile sojourn time in microseconds.
    pub victim_p999_us: f64,
    /// Antagonist's achieved rate over its own simulated wall span.
    pub antagonist_achieved_per_sec: f64,
    /// Antagonist arrivals rejected by the shared admission queue.
    pub antagonist_dropped: u64,
    /// Jain's fairness index over the pair's weight-normalized achieved
    /// rates.
    pub fairness: f64,
}

impl fmt::Display for InterferenceRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {}@{:.2}x vs {}@{:>4.2}x  victim mean={:>8}us p50={:>8}us \
             p99={:>8}us p999={:>8}us drops={:<5} achieved={:>10}/s | antagonist \
             achieved={:>10}/s drops={:<5} | fairness={:.3}",
            self.platform,
            self.victim_workload,
            FIG25_VICTIM_FRACTION,
            self.antagonist_workload,
            self.antagonist_frac,
            cell(self.victim_mean_us),
            cell(self.victim_p50_us),
            cell(self.victim_p99_us),
            cell(self.victim_p999_us),
            self.victim_dropped,
            cell(self.victim_achieved_per_sec),
            cell(self.antagonist_achieved_per_sec),
            self.antagonist_dropped,
            self.fairness,
        )
    }
}

/// The platform set the fig25 figure sweeps: the software baselines the
/// paper compares against plus the four HAMS variants whose persist-gate
/// serialization the antagonist is meant to expose.
#[must_use]
pub fn fig25_kinds() -> Vec<PlatformKind> {
    vec![
        PlatformKind::Mmap,
        PlatformKind::FlatFlashP,
        PlatformKind::HamsLP,
        PlatformKind::HamsLE,
        PlatformKind::HamsTP,
        PlatformKind::HamsTE,
    ]
}

/// Fig. 25: noisy-neighbour interference. Each platform is calibrated
/// closed-loop on the victim workload; the victim then offers a fixed
/// [`FIG25_VICTIM_FRACTION`] of that rate while the antagonist's offered
/// load sweeps `antagonist_fracs`, both as Poisson tenants sharing one
/// bounded admission queue. Rows are platform-major in the order of `kinds`,
/// ascending antagonist fraction within a platform — the shape
/// [`fig25_victim_p99_monotone_prefix`] expects.
#[must_use]
pub fn fig25_interference(
    scale: &ScaleProfile,
    victim_workload: &str,
    antagonist_workload: &str,
    kinds: &[PlatformKind],
    antagonist_fracs: &[f64],
) -> Vec<InterferenceRow> {
    let (Some(victim), Some(antagonist)) = (
        WorkloadSpec::by_name(victim_workload),
        WorkloadSpec::by_name(antagonist_workload),
    ) else {
        return Vec::new();
    };
    let per_platform = parallel_map(kinds, |kind| {
        let service_rate = {
            let mut platform = kind.build(scale);
            let m = run_workload(platform.as_mut(), victim, scale);
            m.accesses as f64 / m.total_time.as_secs_f64().max(1e-12)
        };
        antagonist_fracs
            .iter()
            .map(|&frac| {
                // Match the tenants' arrival windows, not their arrival
                // counts: a fixed-count antagonist at a high rate finishes
                // its schedule early and leaves the victim's tail
                // uncontended, so its access count scales with its rate.
                let antagonist_accesses = ((scale.accesses as f64 * frac / FIG25_VICTIM_FRACTION)
                    .round() as usize)
                    .max(1);
                let set = TenantSet::new(vec![
                    TenantSpec::new(
                        "victim",
                        victim,
                        ArrivalProcess::Poisson {
                            rate_per_sec: FIG25_VICTIM_FRACTION * service_rate,
                        },
                    ),
                    TenantSpec::new(
                        "antagonist",
                        antagonist,
                        ArrivalProcess::Poisson {
                            rate_per_sec: frac * service_rate,
                        },
                    )
                    .with_accesses(antagonist_accesses),
                ]);
                let mut platform = kind.build(scale);
                // The preset's own arrival process is ignored — each
                // tenant's Poisson process drives its stream.
                let config = OpenLoopConfig::poisson(service_rate).with_records(false);
                let m = run_tenant_set_open_loop(platform.as_mut(), &set, scale, &config);
                let fairness = m.fairness();
                let v = &m.tenants[0];
                let a = &m.tenants[1];
                let summary = v.sojourn.summary();
                let us = |f: fn(&hams_sim::HistogramSummary) -> Nanos| {
                    summary.as_ref().map_or(0.0, |s| f(s).as_micros_f64())
                };
                InterferenceRow {
                    platform: kind.label().to_owned(),
                    victim_workload: victim_workload.to_owned(),
                    antagonist_workload: antagonist_workload.to_owned(),
                    antagonist_frac: frac,
                    victim_offered_per_sec: v.offered_rate_per_sec,
                    victim_achieved_per_sec: v.achieved_per_sec(),
                    victim_dropped: v.dropped,
                    victim_mean_us: us(|s| s.mean),
                    victim_p50_us: us(|s| s.p50),
                    victim_p99_us: us(|s| s.p99),
                    victim_p999_us: us(|s| s.p999),
                    antagonist_achieved_per_sec: a.achieved_per_sec(),
                    antagonist_dropped: a.dropped,
                    fairness,
                }
            })
            .collect::<Vec<_>>()
    });
    per_platform.into_iter().flatten().collect()
}

/// Length of the leading prefix of one platform's fig25 curve over which the
/// victim's p99 rises monotonically (non-strictly) with antagonist load.
/// `rows` must be one platform's points in ascending antagonist-load order;
/// a full-length prefix means interference grows with offered antagonist
/// load across the whole sweep.
#[must_use]
pub fn fig25_victim_p99_monotone_prefix(rows: &[InterferenceRow]) -> usize {
    let mut len = rows.len().min(1);
    for pair in rows.windows(2) {
        if pair[1].victim_p99_us + 1e-9 < pair[0].victim_p99_us {
            break;
        }
        len += 1;
    }
    len
}

/// Splits a platform-major fig25 sweep into
/// `(platform, monotone prefix length, curve length)` triples — the
/// per-platform summary the figure reports alongside the rows.
#[must_use]
pub fn fig25_summary(rows: &[InterferenceRow]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0;
    while start < rows.len() {
        let platform = rows[start].platform.clone();
        let end = rows[start..]
            .iter()
            .take_while(|r| r.platform == platform)
            .count()
            + start;
        out.push((
            platform,
            fig25_victim_p99_monotone_prefix(&rows[start..end]),
            end - start,
        ));
        start = end;
    }
    out
}

/// Per-layer summary of one traced run's spans: how many times the layer was
/// crossed and the distribution of the time spent inside it.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRow {
    /// Serving-spine layer name (`request`, `admission`, ..., `archive`).
    pub layer: &'static str,
    /// Number of spans recorded for the layer.
    pub spans: u64,
    /// Mean span duration in microseconds.
    pub mean_us: f64,
    /// 99th-percentile span duration in microseconds.
    pub p99_us: f64,
    /// Longest span in microseconds.
    pub max_us: f64,
}

impl fmt::Display for TimelineRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<10} spans={:<8} mean={:>8}us p99={:>8}us max={:>8}us",
            self.layer,
            self.spans,
            cell(self.mean_us),
            cell(self.p99_us),
            cell(self.max_us),
        )
    }
}

/// Width of the duration histograms behind [`timeline_rows`]; 64 ns buckets
/// over 65 536 buckets cover ~4.2 ms before overflow samples fall back to the
/// overflow-aware summary maximum.
const TIMELINE_BUCKET: Nanos = Nanos::from_nanos(64);
const TIMELINE_BUCKETS: usize = 65_536;

/// Folds a traced run's spans into one [`TimelineRow`] per serving-spine
/// layer that recorded at least one span, in [`Layer::ALL`] order.
#[must_use]
pub fn timeline_rows(telemetry: &RunTelemetry) -> Vec<TimelineRow> {
    let mut per_layer: Vec<Histogram> = Layer::ALL
        .iter()
        .map(|_| Histogram::new(TIMELINE_BUCKET, TIMELINE_BUCKETS))
        .collect();
    for span in telemetry.recorder.spans() {
        per_layer[span.layer.index()].record(span.duration());
    }
    Layer::ALL
        .iter()
        .zip(&per_layer)
        .filter_map(|(layer, hist)| {
            let s = hist.summary()?;
            Some(TimelineRow {
                layer: layer.name(),
                spans: s.count,
                mean_us: s.mean.as_micros_f64(),
                p99_us: s.p99.as_micros_f64(),
                max_us: s.max.as_micros_f64(),
            })
        })
        .collect()
}

/// Offered load (as a fraction of the calibrated closed-loop service rate)
/// used by the [`timeline_traced_run`] open-loop leg: high enough to queue,
/// low enough to stay sustainable.
pub const TIMELINE_OFFERED_FRACTION: f64 = 0.9;

/// Runs the timeline scenario the `figures timeline` report and the trace
/// exporter share: hams-TE serving `rndRd` as an open-loop Poisson stream at
/// [`TIMELINE_OFFERED_FRACTION`] of its calibrated closed-loop rate, with
/// the span tracer and metrics registry attached. hams-TE's striped queue
/// pairs exercise every layer of the spine — misses walk admission,
/// controller, tag array, NVMe, MSI, and archive; hits stop at the tag
/// array.
#[must_use]
pub fn timeline_traced_run(scale: &ScaleProfile) -> (OpenLoopMetrics, RunTelemetry) {
    let spec = WorkloadSpec::by_name("rndRd").expect("rndRd is a Table III workload");
    let service_rate = {
        let mut platform = PlatformKind::HamsTE.build(scale);
        let m = run_workload(platform.as_mut(), spec, scale);
        m.accesses as f64 / m.total_time.as_secs_f64().max(1e-12)
    };
    let config = OpenLoopConfig::poisson(TIMELINE_OFFERED_FRACTION * service_rate);
    let mut platform = PlatformKind::HamsTE.build(scale);
    // Size the span ring to the run: every access crosses at most the seven
    // spine layers plus the admission door-block span, so eight spans per
    // access keeps the recorder from evicting the early request spans.
    let mut telemetry = RunTelemetry::with_capacity(
        scale.accesses.saturating_mul(8).max(1),
        hams_telemetry::DEFAULT_BUCKET_WIDTH,
    );
    let metrics =
        run_workload_open_loop_traced(platform.as_mut(), spec, scale, &config, &mut telemetry);
    (metrics, telemetry)
}

/// Structurally validates a Chrome `trace_event` JSON document and returns
/// the sorted, deduplicated set of span categories (layer names) it carries.
/// Checks that the document parses, `traceEvents` is an array, and every
/// complete (`"X"`) event has the fields a trace viewer needs (`name`,
/// `cat`, `pid`, `tid`, numeric `ts` and `dur`).
pub fn validate_chrome_trace(json: &str) -> Result<Vec<String>, String> {
    let doc = serde_json::from_str(json).map_err(|e| format!("trace JSON does not parse: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .ok_or("traceEvents missing or not an array")?;
    let mut layers = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let phase = event
            .get("ph")
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| format!("event {i}: ph missing"))?;
        if phase != "X" {
            continue;
        }
        for key in ["name", "cat"] {
            if event.get(key).and_then(serde_json::Value::as_str).is_none() {
                return Err(format!("event {i}: {key} missing"));
            }
        }
        for key in ["pid", "tid", "ts", "dur"] {
            if event.get(key).and_then(serde_json::Value::as_f64).is_none() {
                return Err(format!("event {i}: {key} missing or not numeric"));
            }
        }
        let cat = event
            .get("cat")
            .and_then(serde_json::Value::as_str)
            .unwrap();
        if !layers.iter().any(|l| l == cat) {
            layers.push(cat.to_owned());
        }
    }
    layers.sort_unstable();
    Ok(layers)
}

// ---------------------------------------------------------------------------
// Figure 26 — tail latency through device failure, rebuild, and recovery
// ---------------------------------------------------------------------------

/// Workload the fig26 rebuild-under-load scenario serves: `rndWr` is
/// store-heavy and uniformly random over a dataset larger than the NVDIMM
/// cache, so misses and dirty evictions keep the archive busy throughout —
/// the degraded window exercises both reconstruction reads and
/// parity-absorbed writes, and evictions leave durable pages on the failed
/// device for the rebuild to copy back.
pub const FIG26_WORKLOAD: &str = "rndWr";

/// Offered load for fig26, as a fraction of the array's calibrated
/// closed-loop service rate: high enough that rebuild traffic visibly
/// contends with foreground serving, low enough that the healthy phases
/// stay sustainable.
pub const FIG26_OFFERED_FRACTION: f64 = 0.7;

/// Where in the expected run span the device fails and the spare arrives.
/// 30% of the run is a healthy baseline, 10% serves degraded with no spare,
/// and the rebuild starts at 40% — early enough that the array returns to
/// `Healthy` with a recovered tail left to measure.
const FIG26_FAIL_FRACTION: f64 = 0.30;
const FIG26_SPARE_FRACTION: f64 = 0.40;

/// One phase of the fig26 timeline: an array state the run passed through
/// and the sojourn tail of the requests that finished inside its window.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig26Row {
    /// Platform label (the fault-scenario parity array).
    pub platform: String,
    /// Phase name: `healthy`, `degraded`, `rebuilding` or `recovered`.
    pub phase: &'static str,
    /// Window start in microseconds of simulated time.
    pub start_us: f64,
    /// Window end in microseconds of simulated time.
    pub end_us: f64,
    /// Requests that finished inside the window.
    pub served: u64,
    /// Mean sojourn time (queueing + service) in microseconds.
    pub mean_us: f64,
    /// Median sojourn time in microseconds.
    pub p50_us: f64,
    /// 99th-percentile sojourn time in microseconds.
    pub p99_us: f64,
    /// 99th-percentile sojourn time over the same window of a fault-free
    /// twin run serving the identical arrival schedule — the honest
    /// baseline for each phase, since warm-up transients hit both runs at
    /// the same simulated instants.
    pub baseline_p99_us: f64,
}

impl fmt::Display for Fig26Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:<10} [{:>10} .. {:>10}]us served={:<6} mean={:>8}us p50={:>8}us \
             p99={:>8}us healthy-twin-p99={:>8}us",
            self.platform,
            self.phase,
            cell(self.start_us),
            cell(self.end_us),
            self.served,
            cell(self.mean_us),
            cell(self.p50_us),
            cell(self.p99_us),
            cell(self.baseline_p99_us),
        )
    }
}

/// Nearest-rank percentile of an ascending sojourn list, in microseconds
/// (0 for an empty window).
fn sorted_percentile_us(sorted: &[Nanos], p: f64) -> f64 {
    let Some(last) = sorted.len().checked_sub(1) else {
        return 0.0;
    };
    let idx = ((p / 100.0) * last as f64).round() as usize;
    sorted[idx.min(last)].as_micros_f64()
}

/// The fault schedule fig26 and `throughput --faults` share, plus the
/// expected simulated span it was derived from: device 0 fail-stops at
/// [`FIG26_FAIL_FRACTION`] of the span, its spare arrives at
/// [`FIG26_SPARE_FRACTION`], and the rebuild is paced at one row per
/// 1/10,000th of the span so it finishes with a recovered tail left to
/// measure at any scale.
#[must_use]
pub fn fig26_fault_schedule(accesses: usize, offered_per_sec: f64) -> (FaultPlan, Nanos) {
    let span = Nanos::from_nanos_f64(accesses as f64 / offered_per_sec.max(1e-12) * 1e9);
    let plan = FaultPlan::new()
        .with_fail_stop(
            0,
            span.scale(FIG26_FAIL_FRACTION),
            span.scale(FIG26_SPARE_FRACTION),
        )
        .with_rebuild(RebuildConfig {
            row_interval: span.scale(1e-4).max(Nanos::from_nanos(1)),
            ..RebuildConfig::default()
        });
    (plan, span)
}

/// Sorted sojourn times of the records that finished inside `[start, stop)`.
fn window_sojourns(records: &[OpenLoopRecord], start: Nanos, stop: Nanos) -> Vec<Nanos> {
    let mut sojourns: Vec<Nanos> = records
        .iter()
        .filter(|r| r.finished >= start && r.finished < stop)
        .map(OpenLoopRecord::sojourn)
        .collect();
    sojourns.sort_unstable();
    sojourns
}

/// Fig. 26: sojourn tail latency through a device failure and
/// rebuild-under-load. The fault-scenario parity array (`hams-TP-r5`) is
/// calibrated closed-loop, then served Poisson arrivals at
/// [`FIG26_OFFERED_FRACTION`] of that rate while a [`FaultPlan`] fails
/// device 0 partway through the run: the array walks Healthy → Degraded →
/// Rebuilding → Healthy, and each phase window reports the tail of the
/// requests that finished inside it, next to the same window of a
/// fault-free twin run serving the identical arrival schedule. Fault
/// instants are fractions of the expected run span, so the same seed gives
/// the same timeline at any scale.
#[must_use]
pub fn fig26_latency_under_rebuild(scale: &ScaleProfile) -> Vec<Fig26Row> {
    let spec = WorkloadSpec::by_name(FIG26_WORKLOAD).expect("rndWr is a Table III workload");
    let service_rate = {
        let mut platform = build_fault_platform(scale);
        let m = run_workload(&mut platform, spec, scale);
        m.accesses as f64 / m.total_time.as_secs_f64().max(1e-12)
    };
    let offered = FIG26_OFFERED_FRACTION * service_rate;
    let (plan, span) = fig26_fault_schedule(scale.accesses, offered);
    let config = OpenLoopConfig::poisson(offered);
    // The fault-free twin: same platform, same arrival schedule, no plan.
    let healthy = {
        let mut platform = build_fault_platform(scale);
        run_workload_open_loop(&mut platform, spec, scale, &config)
    };
    let mut platform = build_fault_platform(scale);
    platform.controller_mut().set_fault_plan(plan);
    let m = run_workload_open_loop(&mut platform, spec, scale, &config);
    let end = m.last_finish.max(span);
    // Let a rebuild that outlived the arrivals finish, so the timeline's
    // final transition is on record even for very short runs.
    platform.controller_mut().advance_faults(end);
    let fault = platform
        .controller()
        .archive()
        .fault()
        .expect("fig26 installs a fault plan");
    let mut windows: Vec<(&'static str, Nanos, Nanos)> = Vec::new();
    let mut prev_at = Nanos::ZERO;
    let mut prev_name = "healthy";
    for &(at, state) in fault.transitions() {
        windows.push((prev_name, prev_at, at));
        prev_at = at;
        prev_name = match state {
            ArrayState::Healthy => "recovered",
            ArrayState::Degraded => "degraded",
            ArrayState::Rebuilding => "rebuilding",
        };
    }
    windows.push((prev_name, prev_at, end.max(prev_at) + Nanos::from_nanos(1)));
    windows
        .into_iter()
        .map(|(phase, start, stop)| {
            let sojourns = window_sojourns(&m.records, start, stop);
            let baseline = window_sojourns(&healthy.records, start, stop);
            let served = sojourns.len() as u64;
            let mean_us = if served == 0 {
                0.0
            } else {
                sojourns.iter().map(|s| s.as_micros_f64()).sum::<f64>() / served as f64
            };
            Fig26Row {
                platform: fault_label(),
                phase,
                start_us: start.as_micros_f64(),
                end_us: stop.as_micros_f64(),
                served,
                mean_us,
                p50_us: sorted_percentile_us(&sojourns, 50.0),
                p99_us: sorted_percentile_us(&sojourns, 99.0),
                baseline_p99_us: sorted_percentile_us(&baseline, 99.0),
            }
        })
        .collect()
}

/// The first fig26 row for `phase`, if the run passed through it.
#[must_use]
pub fn fig26_phase<'a>(rows: &'a [Fig26Row], phase: &str) -> Option<&'a Fig26Row> {
    rows.iter().find(|r| r.phase == phase)
}

/// Prints any row type list under a header (used by the `figures` binary and
/// the benches so each bench also regenerates its figure's series).
pub fn print_rows<T: fmt::Display>(header: &str, rows: &[T]) {
    println!("=== {header} ===");
    for r in rows {
        println!("{r}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleProfile {
        ScaleProfile {
            capacity_divisor: 4096,
            accesses: 800,
            seed: 5,
        }
    }

    #[test]
    fn fig05_ull_beats_nvme_on_latency_and_bandwidth() {
        let rows = fig05_device_characterization(&[1, 8], 200);
        let avg = |device: &str, metric: fn(&DeviceCharacterizationRow) -> f64| {
            let xs: Vec<f64> = rows
                .iter()
                .filter(|r| r.device == device)
                .map(metric)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(avg("ULL SSD", |r| r.avg_latency_us) < avg("NVMe SSD", |r| r.avg_latency_us));
        assert!(avg("ULL SSD", |r| r.bandwidth_mb_s) > avg("NVMe SSD", |r| r.bandwidth_mb_s));
    }

    #[test]
    fn fig05a_ull_read_is_a_few_times_ddr4() {
        let (ddr_r, _, ull_r, ull_w) = fig05a_4kb_access();
        assert!(ull_r > ddr_r, "ULL read must be slower than DDR4");
        assert!(
            ull_r < 20.0,
            "ULL 4KB read should stay in the ~10us range, was {ull_r}"
        );
        assert!(
            ull_w > 1.0,
            "buffered ULL write latency should still be >1us, was {ull_w}"
        );
    }

    #[test]
    fn fig06_ull_flash_beats_sata_under_mmf() {
        let rows = fig06_mmf_performance(&tiny(), &["rndRd"]);
        let bw = |ssd: &str| {
            rows.iter()
                .find(|r| r.ssd == ssd)
                .map(|r| r.bandwidth_mb_s)
                .unwrap_or(0.0)
        };
        assert!(bw("ULL-Flash") > bw("SATA SSD"));
    }

    #[test]
    fn fig07_overheads_and_bypass_shape() {
        let scale = tiny();
        let rows = fig07a_software_overheads(&scale, &["rndWr"]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        let total = r.mmap_fraction + r.io_stack_fraction + r.ssd_fraction + r.cpu_fraction;
        assert!((total - 1.0).abs() < 0.05, "fractions sum to {total}");
        assert!(r.degradation_vs_nvdimm_pct > 0.0);

        let ipc = fig07b_bypass_ipc(&scale, &["rndWr"]);
        assert!(
            ipc[0].nvdimm_ipc > ipc[0].ull_ipc,
            "raw ULL bypass must hurt IPC"
        );
    }

    #[test]
    fn fig16_hams_te_beats_mmap_on_microbench() {
        let scale = tiny();
        let rows = fig16_application_performance(
            &scale,
            &[PlatformKind::Mmap, PlatformKind::HamsTE],
            &["rndWr"],
        );
        let get = |p: &str| rows.iter().find(|r| r.platform == p).unwrap().throughput;
        assert!(get("hams-TE") > get("mmap"));
    }

    #[test]
    fn fig17_and_fig19_are_normalized_to_mmap() {
        let scale = tiny();
        let exec = fig17_execution_breakdown(&scale, "rndWr");
        let mmap_total: f64 = exec
            .iter()
            .find(|r| r.platform == "mmap")
            .unwrap()
            .components
            .iter()
            .map(|(_, v)| v)
            .sum();
        assert!((mmap_total - 1.0).abs() < 1e-6);

        let energy = fig19_energy(&scale, "rndWr");
        let te_total: f64 = energy
            .iter()
            .find(|r| r.platform == "hams-TE")
            .unwrap()
            .components
            .iter()
            .map(|(_, v)| v)
            .sum();
        assert!(
            te_total < 1.0,
            "hams-TE must use less energy than mmap, got {te_total}"
        );
    }

    #[test]
    fn fig18_advanced_hams_shrinks_the_dma_share() {
        let scale = tiny();
        let rows = fig18_memory_delay(&scale, "rndWr");
        let dma = |p: &str| {
            rows.iter()
                .find(|r| r.platform == p)
                .unwrap()
                .components
                .iter()
                .find(|(c, _)| c == "dma")
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        assert!(dma("hams-TE") < dma("hams-LE"));
    }

    #[test]
    fn fig21_more_queues_strictly_cut_random_read_latency() {
        let scale = ScaleProfile {
            capacity_divisor: 2048,
            accesses: 2_500,
            seed: 9,
        };
        let rows = fig21_queue_sensitivity(&scale, "rndRd", &[1, 4]);
        assert_eq!(rows.len(), 2);
        assert!(
            rows[1].mean_latency_us < rows[0].mean_latency_us,
            "4 queues ({:.2}us) must beat 1 queue ({:.2}us)",
            rows[1].mean_latency_us,
            rows[0].mean_latency_us
        );
        assert!(rows[1].kpages_per_sec > rows[0].kpages_per_sec);
    }

    #[test]
    fn fig_shard_sensitivity_is_flat_and_multi_shard_never_loses() {
        let scale = tiny();
        let rows = fig_shard_sensitivity(&scale, "rndWr", &[1, 2, 8]);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.kpages_per_sec > 0.0));
        for r in &rows[1..] {
            // Byte-identical metrics ⇒ multi-shard throughput ≥ single-shard
            // with equality; the grid function itself asserts the stronger
            // invariance, this test pins the figure-level reading.
            assert!(
                r.kpages_per_sec >= rows[0].kpages_per_sec,
                "{} shards ({:.1}) fell below single shard ({:.1})",
                r.shards,
                r.kpages_per_sec,
                rows[0].kpages_per_sec
            );
            assert_eq!(r.mean_latency_us, rows[0].mean_latency_us);
        }
    }

    #[test]
    fn fig23_raid_scaling_strictly_beats_single_device_on_random_reads() {
        let scale = ScaleProfile {
            capacity_divisor: 2048,
            accesses: 2_500,
            seed: 9,
        };
        let rows = fig_device_scaling(&scale, "rndRd", &[1, 4]);
        assert_eq!(rows.len(), 3, "d1, d4 and the cxl variant");
        let d1 = &rows[0];
        let d4 = &rows[1];
        let cxl = &rows[2];
        assert!(
            d4.kpages_per_sec > d1.kpages_per_sec,
            "RAID-0 d4 ({:.1} Kpages/s) must strictly beat d1 ({:.1} Kpages/s)",
            d4.kpages_per_sec,
            d1.kpages_per_sec
        );
        assert!(d4.mean_latency_us < d1.mean_latency_us);
        // The fan-out actually spreads traffic: several devices served bytes,
        // and (asserted inside fig_device_scaling) their totals sum to d1's.
        assert!(d4.per_device_bytes.iter().filter(|&&b| b > 0).count() > 1);
        assert_eq!(
            d1.per_device_bytes.iter().sum::<u64>(),
            d4.per_device_bytes.iter().sum::<u64>()
        );
        // The CXL-attached d4 pays the link: slower than the DDR4-attached
        // d4, but its stripe routing is identical.
        assert!(cxl.kpages_per_sec < d4.kpages_per_sec);
        assert_eq!(
            cxl.per_device_bytes.iter().sum::<u64>(),
            d4.per_device_bytes.iter().sum::<u64>()
        );
    }

    #[test]
    fn fig20_page_size_sweep_and_large_footprint() {
        let scale = tiny();
        let sweep = fig20a_page_sizes(&scale, "rndSel", &[4096, 65_536]);
        assert_eq!(sweep.len(), 2);
        assert!(sweep.iter().all(|r| r.ops_per_sec > 0.0));

        let rows = fig20b_large_footprint(&scale, "rndSel");
        let get = |p: &str| rows.iter().find(|r| r.platform == p).unwrap().ops_per_sec;
        assert!(get("oracle") >= get("hams-TE"));
        assert!(get("hams-TE") > get("mmap"));
    }

    #[test]
    fn fig24_sweep_shape_and_accounting() {
        let scale = tiny();
        let kinds = [PlatformKind::HamsTE, PlatformKind::Oracle];
        let fractions = [0.5, 1.25];
        let rows = fig24_latency_vs_load(&scale, "rndRd", &kinds, &fractions);
        assert_eq!(rows.len(), kinds.len() * fractions.len());
        for row in &rows {
            assert_eq!(row.arrivals, scale.accesses as u64);
            assert!(row.offered_per_sec > 0.0);
            assert!(row.achieved_per_sec > 0.0);
            assert!(row.mean_us > 0.0);
            assert!(row.p50_us <= row.p99_us && row.p99_us <= row.p999_us);
        }
        // Rows are platform-major in `kinds` order, ascending fraction
        // within a platform — the shape the knee finder expects.
        assert_eq!(rows[0].platform, "hams-TE");
        assert_eq!(rows[2].platform, "oracle");
        assert!(rows[0].offered_frac < rows[1].offered_frac);
        // At half the calibrated closed-loop rate every platform keeps up.
        assert!(rows[0].sustainable && rows[2].sustainable);
        let knees = fig24_knees(&rows);
        assert_eq!(knees.len(), kinds.len());
        for (platform, knee) in &knees {
            let knee = knee
                .as_ref()
                .unwrap_or_else(|| panic!("{platform} saturated at half its own service rate"));
            assert!(knee.sustainable);
        }
    }

    #[test]
    fn fig26_rebuild_elevates_the_tail_then_recovers() {
        let rows = fig26_latency_under_rebuild(&tiny());
        // The run walks the full state machine: a healthy baseline, a
        // degraded window, the rebuild, and a recovered tail.
        for phase in ["healthy", "degraded", "rebuilding", "recovered"] {
            let row = fig26_phase(&rows, phase)
                .unwrap_or_else(|| panic!("run never entered the {phase} phase"));
            assert!(row.end_us > row.start_us, "{phase} window is empty");
        }
        let healthy = fig26_phase(&rows, "healthy").unwrap();
        let degraded = fig26_phase(&rows, "degraded").unwrap();
        let recovered = fig26_phase(&rows, "recovered").unwrap();
        assert!(healthy.served > 0 && degraded.served > 0 && recovered.served > 0);
        // Before the fault the two runs are identical, so the healthy
        // window's tail matches its twin exactly.
        assert!(
            (healthy.p99_us - healthy.baseline_p99_us).abs() < 1e-9,
            "healthy-phase p99 {} diverged from the fault-free twin {}",
            healthy.p99_us,
            healthy.baseline_p99_us
        );
        // Degraded service costs N-1 reads plus XOR per reconstructed read,
        // so the tail through the fault cannot beat the twin's over the
        // same window.
        assert!(
            degraded.p99_us + 1e-9 >= degraded.baseline_p99_us,
            "degraded p99 {} fell below the fault-free twin's {}",
            degraded.p99_us,
            degraded.baseline_p99_us
        );
        // After the rebuild completes the tail settles back to within
        // tolerance of the twin (the recovered window may still drain
        // backlog the fault left behind, hence the headroom).
        assert!(
            recovered.p99_us <= 2.0 * recovered.baseline_p99_us.max(1.0),
            "recovered p99 {} never settled near the fault-free twin's {}",
            recovered.p99_us,
            recovered.baseline_p99_us
        );
    }

    #[test]
    fn fig24_knee_is_the_end_of_the_sustained_prefix() {
        let row = |platform: &str, frac: f64, sustainable: bool| OpenLoopRow {
            platform: platform.to_owned(),
            workload: "rndRd".to_owned(),
            offered_frac: frac,
            offered_per_sec: frac * 1e6,
            achieved_per_sec: if sustainable { frac * 1e6 } else { 9e5 },
            dropped: 0,
            arrivals: 100,
            mean_us: 1.2,
            p50_us: 1.0,
            p99_us: 2.0,
            p999_us: 3.0,
            sustainable,
        };
        assert_eq!(fig24_knee(&[]), None);
        assert_eq!(fig24_knee(&[row("a", 0.5, false)]), None);
        let curve = [
            row("a", 0.25, true),
            row("a", 0.5, true),
            row("a", 0.9, false),
            // Noise past saturation must not reopen the curve.
            row("a", 1.25, true),
        ];
        assert_eq!(fig24_knee(&curve), Some(1));

        let mut rows = curve.to_vec();
        rows.push(row("b", 0.25, false));
        rows.push(row("b", 0.5, true));
        let knees = fig24_knees(&rows);
        assert_eq!(knees.len(), 2);
        assert_eq!(knees[0].0, "a");
        assert_eq!(knees[0].1.as_ref().map(|r| r.offered_frac), Some(0.5));
        assert_eq!(knees[1].0, "b");
        assert!(knees[1].1.is_none(), "b saturated at its lowest load");
    }

    #[test]
    fn fig25_interference_shape_and_monotone_victim_tail() {
        // More arrivals than `tiny()` so the victim's p99 (the ~1% worst
        // sojourns) has enough samples to order the curve points.
        let scale = ScaleProfile {
            capacity_divisor: 4096,
            accesses: 4_000,
            seed: 5,
        };
        let kinds = [PlatformKind::Mmap, PlatformKind::HamsTE];
        let fracs = [0.25, 0.9, 1.5];
        let rows = fig25_interference(&scale, "rndRd", "update", &kinds, &fracs);
        assert_eq!(rows.len(), kinds.len() * fracs.len());
        for row in &rows {
            assert!(row.victim_offered_per_sec > 0.0);
            assert!(row.victim_achieved_per_sec > 0.0);
            assert!(row.victim_mean_us > 0.0);
            assert!(row.victim_p50_us <= row.victim_p99_us);
            assert!(row.victim_p99_us <= row.victim_p999_us);
            assert!(row.fairness > 0.0 && row.fairness <= 1.0 + 1e-12);
        }
        // Platform-major in `kinds` order, ascending antagonist load within
        // a platform — the shape the monotone-prefix scan expects.
        assert_eq!(rows[0].platform, "mmap");
        assert_eq!(rows[3].platform, "hams-TE");
        assert!(rows[0].antagonist_frac < rows[1].antagonist_frac);
        let summary = fig25_summary(&rows);
        assert_eq!(summary.len(), kinds.len());
        // The acceptance pin: on at least one HAMS variant the victim's p99
        // rises monotonically with antagonist load across the whole sweep.
        let hams = summary
            .iter()
            .find(|(p, _, _)| p == "hams-TE")
            .expect("hams-TE swept");
        assert_eq!(
            hams.1,
            hams.2,
            "victim p99 on hams-TE not monotone in antagonist load: {:?}",
            rows.iter()
                .filter(|r| r.platform == "hams-TE")
                .map(|r| r.victim_p99_us)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn fig25_monotone_prefix_scan() {
        let row = |platform: &str, frac: f64, p99: f64| InterferenceRow {
            platform: platform.to_owned(),
            victim_workload: "rndRd".to_owned(),
            antagonist_workload: "update".to_owned(),
            antagonist_frac: frac,
            victim_offered_per_sec: 1e5,
            victim_achieved_per_sec: 1e5,
            victim_dropped: 0,
            victim_mean_us: p99 / 2.0,
            victim_p50_us: p99 / 2.0,
            victim_p99_us: p99,
            victim_p999_us: p99 * 2.0,
            antagonist_achieved_per_sec: frac * 1e6,
            antagonist_dropped: 0,
            fairness: 1.0,
        };
        assert_eq!(fig25_victim_p99_monotone_prefix(&[]), 0);
        assert_eq!(fig25_victim_p99_monotone_prefix(&[row("a", 0.5, 2.0)]), 1);
        let curve = [
            row("a", 0.25, 1.0),
            row("a", 0.5, 1.0),
            row("a", 0.75, 3.0),
            row("a", 1.0, 2.0),
            row("a", 1.25, 9.0),
        ];
        assert_eq!(fig25_victim_p99_monotone_prefix(&curve), 3);
        let mut rows = curve.to_vec();
        rows.push(row("b", 0.25, 4.0));
        rows.push(row("b", 0.5, 5.0));
        let summary = fig25_summary(&rows);
        assert_eq!(
            summary,
            vec![("a".to_owned(), 3, 5), ("b".to_owned(), 2, 2)]
        );
    }

    #[test]
    fn timeline_traced_run_covers_the_serving_spine() {
        let (metrics, telemetry) = timeline_traced_run(&tiny());
        assert!(metrics.served > 0);
        let rows = timeline_rows(&telemetry);
        assert!(!rows.is_empty());
        let layer_names: Vec<&str> = rows.iter().map(|r| r.layer).collect();
        // The request and admission layers cover every arrival; hams-TE's
        // tiny cache forces misses, so the hardware layers appear too.
        for expect in ["request", "admission", "controller", "tag_array", "nvme"] {
            assert!(layer_names.contains(&expect), "missing layer {expect}");
        }
        for row in &rows {
            assert!(row.spans > 0);
            assert!(row.mean_us <= row.max_us + 1e-9);
            assert!(row.p99_us <= row.max_us + 1e-9);
        }
    }

    #[test]
    fn exported_trace_validates_and_carries_the_traced_layers() {
        let (_, telemetry) = timeline_traced_run(&tiny());
        let json = hams_telemetry::chrome_trace_json(&[(
            "hams-TE rndRd".to_owned(),
            telemetry.spans_sorted(),
        )]);
        let layers = validate_chrome_trace(&json).expect("exported trace is structurally valid");
        let rows = timeline_rows(&telemetry);
        for row in &rows {
            assert!(
                layers.iter().any(|l| l == row.layer),
                "trace lost {}",
                row.layer
            );
        }

        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"a\"}]}").is_err()
        );
    }
}
