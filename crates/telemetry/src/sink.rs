//! Trace sinks: where emitted spans go.

use std::collections::VecDeque;

use crate::span::Span;

/// A consumer of emitted spans.
///
/// The serving spine calls [`TraceSink::is_enabled`] before building a span
/// so the disabled path costs one branch and never allocates; `record` is
/// only reached with a fully-built span.
pub trait TraceSink {
    /// Whether the sink wants spans at all. Emitters skip span construction
    /// entirely when this is `false`.
    fn is_enabled(&self) -> bool;
    /// Accepts one span. Must not panic: telemetry observes the run, it
    /// never aborts it.
    fn record(&mut self, span: Span);
}

/// The zero-cost default sink: reports disabled, drops everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&mut self, _span: Span) {}
}

/// A bounded ring buffer of spans. When full it drops the *oldest* span and
/// counts the loss, so a long run keeps its most recent window rather than
/// aborting or growing without bound.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    capacity: usize,
    ring: VecDeque<Span>,
    recorded: u64,
    dropped: u64,
}

impl SpanRecorder {
    /// A recorder keeping at most `capacity` spans (`capacity >= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span recorder capacity must be at least 1");
        SpanRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(1024)),
            recorded: 0,
            dropped: 0,
        }
    }

    /// Maximum number of retained spans.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of spans currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no spans are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total spans ever recorded, including any since evicted.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Spans evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained spans in record order (oldest first).
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.ring.iter()
    }

    /// Moves every retained span into `out` (appending) and empties the ring.
    /// Eviction counters are kept so a drained recorder still reports losses.
    pub fn drain_into(&mut self, out: &mut Vec<Span>) {
        out.extend(self.ring.drain(..));
    }

    /// Forgets all retained spans and resets the counters.
    pub fn clear(&mut self) {
        self.ring.clear();
        self.recorded = 0;
        self.dropped = 0;
    }
}

impl TraceSink for SpanRecorder {
    #[inline]
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&mut self, span: Span) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(span);
        self.recorded += 1;
    }
}

/// The concrete sink the serving spine owns.
///
/// An enum rather than a `dyn TraceSink` so the controller stays `Clone`-free
/// of object-safety concerns and the disabled check compiles to a tag test.
/// The [`TraceSink`] trait remains the extension point for custom sinks at
/// the API boundary; inside the spine this enum is the storage.
#[derive(Debug, Clone, Default)]
pub enum TelemetrySink {
    /// Tracing off: the allocation-free default.
    #[default]
    Noop,
    /// Tracing on: spans land in a bounded ring.
    Recorder(SpanRecorder),
}

impl TelemetrySink {
    /// The disabled sink.
    #[must_use]
    pub fn disabled() -> Self {
        TelemetrySink::Noop
    }

    /// A recording sink with the given ring capacity.
    #[must_use]
    pub fn recording(capacity: usize) -> Self {
        TelemetrySink::Recorder(SpanRecorder::new(capacity))
    }

    /// The recorder, when tracing is on.
    #[must_use]
    pub fn recorder(&self) -> Option<&SpanRecorder> {
        match self {
            TelemetrySink::Noop => None,
            TelemetrySink::Recorder(r) => Some(r),
        }
    }

    /// Moves retained spans into `out` (appending). No-op when disabled.
    pub fn drain_into(&mut self, out: &mut Vec<Span>) {
        if let TelemetrySink::Recorder(r) = self {
            r.drain_into(out);
        }
    }
}

impl TraceSink for TelemetrySink {
    #[inline]
    fn is_enabled(&self) -> bool {
        matches!(self, TelemetrySink::Recorder(_))
    }

    #[inline]
    fn record(&mut self, span: Span) {
        if let TelemetrySink::Recorder(r) = self {
            r.record(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Layer;
    use hams_sim::Nanos;

    fn span(n: u64) -> Span {
        Span::new(
            Layer::Request,
            "s",
            Nanos::from_nanos(n),
            Nanos::from_nanos(n + 1),
        )
    }

    #[test]
    fn noop_sink_reports_disabled() {
        let mut s = NoopSink;
        assert!(!s.is_enabled());
        s.record(span(1));
    }

    #[test]
    fn recorder_evicts_oldest_when_full() {
        let mut r = SpanRecorder::new(2);
        r.record(span(1));
        r.record(span(2));
        r.record(span(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.recorded(), 3);
        assert_eq!(r.dropped(), 1);
        let starts: Vec<u64> = r.spans().map(|s| s.start.as_nanos()).collect();
        assert_eq!(starts, vec![2, 3]);
    }

    #[test]
    fn drain_moves_spans_and_keeps_counters() {
        let mut r = SpanRecorder::new(4);
        r.record(span(1));
        r.record(span(2));
        let mut out = Vec::new();
        r.drain_into(&mut out);
        assert_eq!(out.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 2);
    }

    #[test]
    fn telemetry_sink_default_is_noop() {
        let sink = TelemetrySink::default();
        assert!(!sink.is_enabled());
        assert!(sink.recorder().is_none());
    }

    #[test]
    fn telemetry_sink_records_when_enabled() {
        let mut sink = TelemetrySink::recording(8);
        assert!(sink.is_enabled());
        sink.record(span(5));
        assert_eq!(sink.recorder().unwrap().len(), 1);
        let mut out = Vec::new();
        sink.drain_into(&mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_recorder_panics() {
        let _ = SpanRecorder::new(0);
    }
}
