//! Simulated-time observability for the HAMS reproduction.
//!
//! Every latency in this workspace is *simulated* time ([`hams_sim::Nanos`]),
//! so the telemetry layer records simulated instants too: a span's `ts` in the
//! exported Chrome trace is the request's position on the simulation timeline,
//! not a wall-clock measurement. The crate provides three pieces:
//!
//! 1. **Span tracing** — [`Span`] describes one interval of a request's
//!    lifecycle (admission wait, controller access, tag probe, NVMe submit,
//!    MSI delivery, archive service, ...), tagged with the tenant, tag shard,
//!    queue pair and archive device it touched. [`TraceSink`] is the
//!    collection trait; [`NoopSink`] is the zero-cost default and
//!    [`SpanRecorder`] a bounded ring buffer. [`TelemetrySink`] is the
//!    concrete enum the serving spine threads through (a single branch on the
//!    hot path when disabled — no allocation, no virtual dispatch).
//! 2. **Metrics registry** — [`MetricsRegistry`] samples named counters and
//!    gauges into time-bucketed series during a run (admission queue depth,
//!    in-flight NVMe commands, MSI burst sizes, internal-DRAM evictions,
//!    journal writes, per-tenant drops).
//! 3. **Exporters** — [`chrome_trace_json`] renders Perfetto-loadable Chrome
//!    `trace_event` JSON; the registry dumps CSV and JSON series.
//!
//! The hard contract: telemetry is *observation only*. Sinks record
//! already-computed timestamps and never feed back into the simulation, so
//! simulated metrics are byte-identical with tracing on or off
//! (`tests/telemetry_equivalence.rs` pins this on all eleven platforms).

mod export;
mod registry;
mod sink;
mod span;

pub use export::chrome_trace_json;
pub use registry::{MetricKind, MetricSeries, MetricsRegistry, SeriesBucket};
pub use sink::{NoopSink, SpanRecorder, TelemetrySink, TraceSink};
pub use span::{component_spans, Layer, Span};

use hams_sim::Nanos;

/// Default ring-buffer capacity for a [`RunTelemetry`] recorder.
pub const DEFAULT_SPAN_CAPACITY: usize = 65_536;

/// Default time-bucket width for sampled metric series (100 µs).
pub const DEFAULT_BUCKET_WIDTH: Nanos = Nanos::from_micros(100);

/// Everything one traced run collects: the request-lifecycle spans and the
/// sampled metric series. The runners (`hams-platforms`) fill one of these
/// when tracing is requested; exporters consume it afterwards.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// Ring buffer of recorded spans (runner-level request spans plus the
    /// spans drained from the platform's own sink at the end of the run).
    pub recorder: SpanRecorder,
    /// Time-bucketed counter/gauge series sampled during the run.
    pub registry: MetricsRegistry,
}

impl RunTelemetry {
    /// A collector with the default span capacity and bucket width.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY, DEFAULT_BUCKET_WIDTH)
    }

    /// A collector with an explicit span ring capacity and series bucket
    /// width.
    #[must_use]
    pub fn with_capacity(spans: usize, bucket_width: Nanos) -> Self {
        RunTelemetry {
            recorder: SpanRecorder::new(spans),
            registry: MetricsRegistry::new(bucket_width),
        }
    }

    /// The recorded spans sorted by start time (then end time), the order
    /// exporters and summaries want. Copies; call once per run, not per span.
    #[must_use]
    pub fn spans_sorted(&self) -> Vec<Span> {
        let mut spans: Vec<Span> = self.recorder.spans().copied().collect();
        spans.sort_by_key(|s| (s.start, s.end, s.layer.index()));
        spans
    }

    /// Number of spans recorded per serving-spine layer, indexed by
    /// [`Layer::index`].
    #[must_use]
    pub fn layer_counts(&self) -> [u64; Layer::ALL.len()] {
        let mut counts = [0u64; Layer::ALL.len()];
        for span in self.recorder.spans() {
            counts[span.layer.index()] += 1;
        }
        counts
    }
}

impl Default for RunTelemetry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_telemetry_sorts_and_counts_layers() {
        let mut t = RunTelemetry::with_capacity(16, Nanos::from_micros(1));
        t.recorder.record(Span::new(
            Layer::Controller,
            "b",
            Nanos::from_nanos(50),
            Nanos::from_nanos(60),
        ));
        t.recorder.record(Span::new(
            Layer::Request,
            "a",
            Nanos::from_nanos(10),
            Nanos::from_nanos(70),
        ));
        let sorted = t.spans_sorted();
        assert_eq!(sorted[0].name, "a");
        assert_eq!(sorted[1].name, "b");
        let counts = t.layer_counts();
        assert_eq!(counts[Layer::Request.index()], 1);
        assert_eq!(counts[Layer::Controller.index()], 1);
        assert_eq!(counts[Layer::Msi.index()], 0);
    }
}
