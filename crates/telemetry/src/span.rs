//! The span model: one interval of a request's lifecycle in simulated time.

use hams_sim::{LatencyVector, Nanos};

/// The serving-spine layer a span belongs to. Layers become Chrome-trace
/// thread lanes, so one request's journey reads top-to-bottom: request →
/// admission → controller → tag array → NVMe → MSI → archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Whole-request lifetime (arrival to completion) and its service phase.
    Request,
    /// Open-loop admission: door blocking, queue wait, dispatch.
    Admission,
    /// HAMS controller access (plan/commit or serial), component breakdown.
    Controller,
    /// Sharded tag directory probes: hit, miss, wait-stall.
    TagArray,
    /// NVMe command submission through the paired queues.
    Nvme,
    /// MSI interrupt delivery (coalesced completion signalling).
    Msi,
    /// Archive (ULL-Flash / Optane) device service.
    Archive,
}

impl Layer {
    /// Every layer, in lane order.
    pub const ALL: [Layer; 7] = [
        Layer::Request,
        Layer::Admission,
        Layer::Controller,
        Layer::TagArray,
        Layer::Nvme,
        Layer::Msi,
        Layer::Archive,
    ];

    /// Stable lane name used in exports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Layer::Request => "request",
            Layer::Admission => "admission",
            Layer::Controller => "controller",
            Layer::TagArray => "tag_array",
            Layer::Nvme => "nvme",
            Layer::Msi => "msi",
            Layer::Archive => "archive",
        }
    }

    /// Dense index into [`Layer::ALL`] (also the export lane id).
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            Layer::Request => 0,
            Layer::Admission => 1,
            Layer::Controller => 2,
            Layer::TagArray => 3,
            Layer::Nvme => 4,
            Layer::Msi => 5,
            Layer::Archive => 6,
        }
    }
}

/// One interval on the simulation timeline, tagged with where in the spine it
/// happened and which tenant/shard/queue/device it touched.
///
/// Spans are `Copy` and carry only small integers and `'static` names, so
/// recording one is a ring-buffer store — no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which serving-spine layer the interval belongs to.
    pub layer: Layer,
    /// What happened ("queue_wait", "tag_hit", "nvme_submit", ...).
    pub name: &'static str,
    /// Simulated start instant.
    pub start: Nanos,
    /// Simulated end instant (`end >= start`).
    pub end: Nanos,
    /// Tenant that issued the request, when known.
    pub tenant: Option<u16>,
    /// Tag-directory shard probed, when applicable.
    pub shard: Option<u16>,
    /// NVMe queue pair used, when applicable.
    pub queue: Option<u16>,
    /// Archive device serviced, when applicable.
    pub device: Option<u16>,
    /// Correlation id: the request index (runner spans) or the MoS page
    /// (controller spans).
    pub request: Option<u64>,
}

impl Span {
    /// A span covering `[start, end]`. Ends before starts are clamped — the
    /// simulation never produces them, but telemetry must not panic the run
    /// it observes.
    #[must_use]
    pub fn new(layer: Layer, name: &'static str, start: Nanos, end: Nanos) -> Self {
        Span {
            layer,
            name,
            start,
            end: end.max(start),
            tenant: None,
            shard: None,
            queue: None,
            device: None,
            request: None,
        }
    }

    /// The span's duration in simulated time.
    #[must_use]
    pub fn duration(&self) -> Nanos {
        self.end - self.start
    }

    /// Tags the issuing tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: u16) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Tags the tag-directory shard.
    #[must_use]
    pub fn with_shard(mut self, shard: u16) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Tags the NVMe queue pair.
    #[must_use]
    pub fn with_queue(mut self, queue: u16) -> Self {
        self.queue = Some(queue);
        self
    }

    /// Tags the archive device.
    #[must_use]
    pub fn with_device(mut self, device: u16) -> Self {
        self.device = Some(device);
        self
    }

    /// Tags the correlation id (request index or MoS page).
    #[must_use]
    pub fn with_request(mut self, request: u64) -> Self {
        self.request = Some(request);
        self
    }

    /// `true` when `other` lies entirely within this span.
    #[must_use]
    pub fn encloses(&self, other: &Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

/// Lays the components of a latency breakdown out as back-to-back child spans
/// starting at `start`, appending them to `out` in component-name order.
///
/// This is the bridge between the repo's per-request [`LatencyVector`] and
/// the span model, and it gives span conservation *by construction*: the
/// produced spans are contiguous and time-ordered, each zero-or-positive, and
/// their durations sum exactly to `breakdown.total()` (the property
/// `tests/span_conservation.rs` pins under proptest).
///
/// Returns the end instant of the last span (`start + breakdown.total()`).
pub fn component_spans(
    layer: Layer,
    start: Nanos,
    breakdown: &LatencyVector,
    out: &mut Vec<Span>,
) -> Nanos {
    let mut cursor = start;
    for (name, t) in breakdown.iter() {
        out.push(Span::new(layer, name, cursor, cursor + t));
        cursor += t;
    }
    cursor
}

#[cfg(test)]
mod tests {
    use super::*;
    use hams_sim::ComponentId;

    #[test]
    fn span_duration_and_tags() {
        let s = Span::new(
            Layer::Nvme,
            "nvme_submit",
            Nanos::from_nanos(100),
            Nanos::from_nanos(250),
        )
        .with_queue(1)
        .with_device(3)
        .with_request(42);
        assert_eq!(s.duration(), Nanos::from_nanos(150));
        assert_eq!(s.queue, Some(1));
        assert_eq!(s.device, Some(3));
        assert_eq!(s.request, Some(42));
        assert_eq!(s.tenant, None);
    }

    #[test]
    fn backwards_span_clamps_instead_of_panicking() {
        let s = Span::new(
            Layer::Request,
            "x",
            Nanos::from_nanos(10),
            Nanos::from_nanos(5),
        );
        assert_eq!(s.duration(), Nanos::ZERO);
        assert_eq!(s.end, s.start);
    }

    #[test]
    fn component_spans_conserve_total_and_tile() {
        let mut v = LatencyVector::new();
        v.add(ComponentId::SSD, Nanos::from_nanos(300));
        v.add(ComponentId::DMA, Nanos::from_nanos(50));
        v.add(ComponentId::NVDIMM, Nanos::from_nanos(15));
        let mut out = Vec::new();
        let end = component_spans(Layer::Controller, Nanos::from_nanos(1_000), &v, &mut out);
        assert_eq!(end, Nanos::from_nanos(1_000) + v.total());
        let sum: Nanos = out.iter().map(Span::duration).sum();
        assert_eq!(sum, v.total());
        for pair in out.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn layer_index_matches_all_order() {
        for (i, layer) in Layer::ALL.iter().enumerate() {
            assert_eq!(layer.index(), i);
        }
    }
}
