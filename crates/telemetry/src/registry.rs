//! The metrics registry: named counters and gauges sampled into
//! time-bucketed series over the simulation timeline.

use hams_sim::Nanos;

/// What a metric series measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A cumulative, monotonically non-decreasing count (journal writes,
    /// per-tenant drops). Buckets report the last sampled value.
    Counter,
    /// An instantaneous level (admission queue depth, in-flight NVMe
    /// commands). Buckets report mean/min/max over their samples.
    Gauge,
}

impl MetricKind {
    /// Stable name used in exports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One time bucket of a sampled series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesBucket {
    /// Simulated start instant of the bucket (a multiple of the registry's
    /// bucket width).
    pub start: Nanos,
    /// Sum of samples landing in the bucket.
    pub sum: f64,
    /// Smallest sample in the bucket.
    pub min: f64,
    /// Largest sample in the bucket.
    pub max: f64,
    /// Most recent sample in the bucket.
    pub last: f64,
    /// Number of samples in the bucket.
    pub samples: u64,
}

impl SeriesBucket {
    fn new(start: Nanos, value: f64) -> Self {
        SeriesBucket {
            start,
            sum: value,
            min: value,
            max: value,
            last: value,
            samples: 1,
        }
    }

    fn push(&mut self, value: f64) {
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.last = value;
        self.samples += 1;
    }

    /// Mean of the samples in the bucket.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.sum / self.samples as f64
    }
}

/// One named series: a metric's samples grouped into time buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSeries {
    name: String,
    kind: MetricKind,
    buckets: Vec<SeriesBucket>,
}

impl MetricSeries {
    /// The metric name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Counter or gauge.
    #[must_use]
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// The time buckets, in ascending start order.
    #[must_use]
    pub fn buckets(&self) -> &[SeriesBucket] {
        &self.buckets
    }

    /// The most recent sampled value, if any sample landed.
    #[must_use]
    pub fn last_value(&self) -> Option<f64> {
        self.buckets.last().map(|b| b.last)
    }

    fn record(&mut self, bucket_start: Nanos, value: f64) {
        // Samples arrive in (near) simulated-time order; walk back from the
        // end for the rare out-of-order sample rather than keeping an index.
        match self
            .buckets
            .iter_mut()
            .rev()
            .find(|b| b.start <= bucket_start)
        {
            Some(b) if b.start == bucket_start => b.push(value),
            _ => {
                let pos = self
                    .buckets
                    .iter()
                    .position(|b| b.start > bucket_start)
                    .unwrap_or(self.buckets.len());
                self.buckets
                    .insert(pos, SeriesBucket::new(bucket_start, value));
            }
        }
    }
}

/// Typed counters and gauges sampled into time-bucketed series.
///
/// The registry lives on the *sampling* path, not the per-access hot path:
/// runners sample it once per dispatched batch, so name lookup is a linear
/// scan over a handful of series and samples are plain field updates.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    bucket_width: Nanos,
    series: Vec<MetricSeries>,
}

impl MetricsRegistry {
    /// A registry bucketing samples into windows of `bucket_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    #[must_use]
    pub fn new(bucket_width: Nanos) -> Self {
        assert!(!bucket_width.is_zero(), "bucket width must be non-zero");
        MetricsRegistry {
            bucket_width,
            series: Vec::new(),
        }
    }

    /// The configured bucket width.
    #[must_use]
    pub fn bucket_width(&self) -> Nanos {
        self.bucket_width
    }

    /// Samples a cumulative counter at simulated instant `at`.
    pub fn counter(&mut self, name: &str, at: Nanos, value: f64) {
        self.sample(name, MetricKind::Counter, at, value);
    }

    /// Samples an instantaneous gauge at simulated instant `at`.
    pub fn gauge(&mut self, name: &str, at: Nanos, value: f64) {
        self.sample(name, MetricKind::Gauge, at, value);
    }

    /// All series, in first-sample order.
    #[must_use]
    pub fn series(&self) -> &[MetricSeries] {
        &self.series
    }

    /// A series by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricSeries> {
        self.series.iter().find(|s| s.name == name)
    }

    /// `true` when no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    fn sample(&mut self, name: &str, kind: MetricKind, at: Nanos, value: f64) {
        if !value.is_finite() {
            return; // Telemetry observes; it never poisons a series or panics.
        }
        let width = self.bucket_width.as_nanos();
        let bucket_start = Nanos::from_nanos((at.as_nanos() / width) * width);
        match self.series.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                debug_assert_eq!(s.kind, kind, "metric {name} sampled with two kinds");
                s.record(bucket_start, value);
            }
            None => {
                let mut s = MetricSeries {
                    name: name.to_string(),
                    kind,
                    buckets: Vec::new(),
                };
                s.record(bucket_start, value);
                self.series.push(s);
            }
        }
    }

    /// Renders every series as CSV with one row per (metric, bucket):
    /// `metric,kind,bucket_start_ns,samples,mean,min,max,last`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("metric,kind,bucket_start_ns,samples,mean,min,max,last\n");
        for s in &self.series {
            for b in &s.buckets {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{}",
                    s.name,
                    s.kind.name(),
                    b.start.as_nanos(),
                    b.samples,
                    fmt_f64(b.mean()),
                    fmt_f64(b.min),
                    fmt_f64(b.max),
                    fmt_f64(b.last),
                )
                .ok();
            }
        }
        out
    }

    /// Renders every series as a JSON document:
    /// `{"bucket_width_ns": N, "series": [{"name": ..., "kind": ...,
    /// "buckets": [{"start_ns": ..., "samples": ..., "mean": ..., "min": ...,
    /// "max": ..., "last": ...}, ...]}, ...]}`.
    ///
    /// Hand-rendered like the rest of the workspace's JSON writers; the unit
    /// tests round-trip it through the `serde_json` shim.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"bucket_width_ns\": {},\n  \"series\": [",
            self.bucket_width.as_nanos()
        );
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"kind\": \"{}\", \"buckets\": [",
                escape_json(&s.name),
                s.kind.name()
            );
            for (j, b) in s.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n      {{\"start_ns\": {}, \"samples\": {}, \"mean\": {}, \"min\": {}, \"max\": {}, \"last\": {}}}",
                    b.start.as_nanos(),
                    b.samples,
                    fmt_f64(b.mean()),
                    fmt_f64(b.min),
                    fmt_f64(b.max),
                    fmt_f64(b.last),
                );
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Formats an f64 so it parses back as a JSON number: finite, with an
/// integer rendering for integral values.
pub(crate) fn fmt_f64(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 9e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Minimal JSON string escaping for names and labels.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Nanos {
        Nanos::from_micros(n)
    }

    #[test]
    fn samples_land_in_the_right_bucket() {
        let mut r = MetricsRegistry::new(us(10));
        r.gauge("queue_depth", us(3), 4.0);
        r.gauge("queue_depth", us(7), 6.0);
        r.gauge("queue_depth", us(12), 2.0);
        let s = r.get("queue_depth").unwrap();
        assert_eq!(s.kind(), MetricKind::Gauge);
        assert_eq!(s.buckets().len(), 2);
        let b0 = &s.buckets()[0];
        assert_eq!(b0.start, Nanos::ZERO);
        assert_eq!(b0.samples, 2);
        assert_eq!(b0.mean(), 5.0);
        assert_eq!(b0.min, 4.0);
        assert_eq!(b0.max, 6.0);
        assert_eq!(s.buckets()[1].start, us(10));
        assert_eq!(s.last_value(), Some(2.0));
    }

    #[test]
    fn out_of_order_samples_insert_sorted() {
        let mut r = MetricsRegistry::new(us(10));
        r.counter("writes", us(25), 9.0);
        r.counter("writes", us(5), 1.0);
        let starts: Vec<u64> = r
            .get("writes")
            .unwrap()
            .buckets()
            .iter()
            .map(|b| b.start.as_nanos())
            .collect();
        assert_eq!(starts, vec![0, 20_000]);
    }

    #[test]
    fn non_finite_samples_are_ignored() {
        let mut r = MetricsRegistry::new(us(10));
        r.gauge("g", us(1), f64::NAN);
        r.gauge("g", us(1), f64::INFINITY);
        assert!(r.is_empty());
    }

    #[test]
    fn csv_has_header_and_one_row_per_bucket() {
        let mut r = MetricsRegistry::new(us(10));
        r.gauge("depth", us(1), 3.0);
        r.counter("drops[t0]", us(1), 1.0);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("metric,kind,bucket_start_ns"));
        assert!(lines[1].starts_with("depth,gauge,0,1,3,3,3,3"));
        assert!(lines[2].starts_with("drops[t0],counter,0,1,1,1,1,1"));
    }

    #[test]
    fn fmt_f64_is_json_safe() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(-2.0), "-2");
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
