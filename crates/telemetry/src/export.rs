//! Chrome `trace_event` export: one process per traced run, one thread lane
//! per serving-spine layer, complete ("X") events in simulated microseconds.
//!
//! The output loads directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`. Timestamps are *simulated* time: `ts` is the span's
//! position on the simulation timeline, so a 3 µs Z-NAND read renders as a
//! 3 µs slice regardless of how fast the simulation ran.

use std::fmt::Write as _;

use crate::registry::{escape_json, fmt_f64};
use crate::span::{Layer, Span};

/// Renders Chrome `trace_event` JSON for one or more traced runs.
///
/// Each `(label, spans)` pair becomes a trace process named `label`; within
/// it every [`Layer`] gets a named thread lane so a request's journey reads
/// top-to-bottom through the spine. Span tags (tenant, shard, queue, device,
/// request id) land in the event's `args`.
#[must_use]
pub fn chrome_trace_json(processes: &[(String, Vec<Span>)]) -> String {
    let mut out = String::from("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [");
    let mut first = true;
    for (pid, (label, spans)) in processes.iter().enumerate() {
        emit_event(&mut out, &mut first, |e| {
            let _ = write!(
                e,
                "{{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": {pid}, \"tid\": 0, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                escape_json(label)
            );
        });
        for layer in Layer::ALL {
            emit_event(&mut out, &mut first, |e| {
                let _ = write!(
                    e,
                    "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": {pid}, \"tid\": {}, \
                     \"args\": {{\"name\": \"{}\"}}}}",
                    layer.index(),
                    layer.name()
                );
            });
        }
        for span in spans {
            emit_event(&mut out, &mut first, |e| {
                let _ = write!(
                    e,
                    "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"{}\", \"pid\": {pid}, \
                     \"tid\": {}, \"ts\": {}, \"dur\": {}",
                    escape_json(span.name),
                    span.layer.name(),
                    span.layer.index(),
                    fmt_f64(span.start.as_micros_f64()),
                    fmt_f64(span.duration().as_micros_f64()),
                );
                e.push_str(", \"args\": {");
                let mut first_arg = true;
                let mut arg = |e: &mut String, key: &str, value: u64| {
                    if !first_arg {
                        e.push_str(", ");
                    }
                    first_arg = false;
                    let _ = write!(e, "\"{key}\": {value}");
                };
                if let Some(t) = span.tenant {
                    arg(e, "tenant", u64::from(t));
                }
                if let Some(s) = span.shard {
                    arg(e, "shard", u64::from(s));
                }
                if let Some(q) = span.queue {
                    arg(e, "queue", u64::from(q));
                }
                if let Some(d) = span.device {
                    arg(e, "device", u64::from(d));
                }
                if let Some(r) = span.request {
                    arg(e, "request", r);
                }
                e.push_str("}}");
            });
        }
    }
    out.push_str("\n]\n}\n");
    out
}

fn emit_event(out: &mut String, first: &mut bool, f: impl FnOnce(&mut String)) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('\n');
    f(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hams_sim::Nanos;

    fn sample_processes() -> Vec<(String, Vec<Span>)> {
        let spans = vec![
            Span::new(
                Layer::Request,
                "sojourn",
                Nanos::from_nanos(0),
                Nanos::from_micros(5),
            )
            .with_tenant(1)
            .with_request(7),
            Span::new(
                Layer::Nvme,
                "nvme_submit",
                Nanos::from_nanos(500),
                Nanos::from_nanos(1_500),
            )
            .with_queue(1)
            .with_device(0),
        ];
        vec![("hams-TE quick".to_string(), spans)]
    }

    #[test]
    fn export_parses_through_the_serde_json_shim() {
        let json = chrome_trace_json(&sample_processes());
        let value = serde_json::from_str(&json).expect("trace JSON must parse");
        let events = value
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 1 process_name + 7 thread_name + 2 spans.
        assert_eq!(events.len(), 10);
        let span_event = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("at least one complete event");
        assert_eq!(
            span_event.get("cat").and_then(|c| c.as_str()),
            Some("request")
        );
        assert_eq!(span_event.get("dur").and_then(|d| d.as_f64()), Some(5.0));
        assert_eq!(
            span_event
                .get("args")
                .and_then(|a| a.get("tenant"))
                .and_then(|t| t.as_u64()),
            Some(1)
        );
    }

    #[test]
    fn every_layer_gets_a_named_lane() {
        let json = chrome_trace_json(&sample_processes());
        for layer in Layer::ALL {
            assert!(
                json.contains(&format!("\"name\": \"{}\"", layer.name())),
                "missing lane for {}",
                layer.name()
            );
        }
    }

    #[test]
    fn empty_input_is_still_valid_json() {
        let json = chrome_trace_json(&[]);
        let value = serde_json::from_str(&json).expect("empty trace parses");
        assert_eq!(
            value
                .get("traceEvents")
                .and_then(|e| e.as_array())
                .map(Vec::len),
            Some(0)
        );
    }
}
