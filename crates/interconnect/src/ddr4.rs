//! DDR4 memory channel model.
//!
//! A DDR4-2666 channel provides roughly 20 GB/s of peak bandwidth (the figure
//! the paper quotes in §IV-C); transfers occupy the shared command/data bus in
//! 64-byte bursts after a fixed access setup (row/column latency). Channel
//! contention between the HAMS cache logic and the NVMe controller of the
//! tightly-integrated design is modelled by the underlying FCFS resource.

use hams_sim::{Nanos, Resource};
use serde::{Deserialize, Serialize};

/// A completed bus transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// When the transfer finished.
    pub finished_at: Nanos,
    /// Pure wire/burst time, excluding queueing.
    pub service: Nanos,
    /// Queueing delay behind earlier transfers on the same channel.
    pub wait: Nanos,
}

impl Transfer {
    /// Total latency experienced by the requester.
    #[must_use]
    pub fn latency(&self) -> Nanos {
        self.service + self.wait
    }
}

/// Configuration of a DDR4 channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ddr4Config {
    /// Peak bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Fixed access latency before the first beat (tRCD + tCL).
    pub access_latency: Nanos,
    /// Burst granularity in bytes (a BL8 burst of a 64-bit channel).
    pub burst_bytes: u64,
}

impl Ddr4Config {
    /// DDR4-2666: ~20 GB/s, ~14 ns CAS, 64-byte bursts.
    #[must_use]
    pub fn ddr4_2666() -> Self {
        Ddr4Config {
            bandwidth_bytes_per_sec: 20.0e9,
            access_latency: Nanos::from_nanos(14),
            burst_bytes: 64,
        }
    }

    /// DDR4-2133 (the NVDIMM module in the paper's testbed): ~17 GB/s.
    #[must_use]
    pub fn ddr4_2133() -> Self {
        Ddr4Config {
            bandwidth_bytes_per_sec: 17.0e9,
            access_latency: Nanos::from_nanos(16),
            burst_bytes: 64,
        }
    }
}

/// A single DDR4 channel shared by every device on it.
///
/// # Example
///
/// ```
/// use hams_interconnect::{Ddr4Channel, Ddr4Config};
/// use hams_sim::Nanos;
///
/// let mut ch = Ddr4Channel::new(Ddr4Config::ddr4_2666());
/// let t = ch.transfer(4096, Nanos::ZERO);
/// // 4 KB at 20 GB/s is ~205 ns plus the fixed access latency.
/// assert!(t.service > Nanos::from_nanos(200) && t.service < Nanos::from_nanos(300));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ddr4Channel {
    config: Ddr4Config,
    bus: Resource,
    bytes_moved: u64,
    /// Rolling two-entry memo of the last transfer sizes' wire times. The
    /// channel sees the same one or two sizes millions of times per run (the
    /// CPU access granule and the MoS page), and the burst round-up plus
    /// `f64` bandwidth division was the dominant per-transfer bookkeeping
    /// cost — the FCFS grant itself is a single busy-until compare. The memo
    /// caches the exact [`Self::service_time`] result per byte count, so
    /// timing stays byte-identical (the goldens pin this).
    #[serde(skip)]
    service_memo: ServiceMemo,
}

/// Most-recently-used pair of `(bytes, service_time(bytes))` results.
///
/// The default entries map 0 bytes to zero time, which is exactly
/// [`Ddr4Channel::service_time`]`(0)` — so a freshly deserialized or reset
/// memo is a *valid* (cold) cache, never a wrong one.
#[derive(Debug, Clone, Copy, Default)]
struct ServiceMemo {
    entries: [(u64, Nanos); 2],
}

impl ServiceMemo {
    #[inline]
    fn lookup(&mut self, bytes: u64) -> Option<Nanos> {
        if self.entries[0].0 == bytes {
            return Some(self.entries[0].1);
        }
        if self.entries[1].0 == bytes {
            self.entries.swap(0, 1);
            return Some(self.entries[0].1);
        }
        None
    }

    #[inline]
    fn insert(&mut self, bytes: u64, service: Nanos) {
        self.entries[1] = self.entries[0];
        self.entries[0] = (bytes, service);
    }
}

impl Ddr4Channel {
    /// Creates an idle channel.
    #[must_use]
    pub fn new(config: Ddr4Config) -> Self {
        Ddr4Channel {
            config,
            bus: Resource::new("ddr4-channel"),
            bytes_moved: 0,
            service_memo: ServiceMemo::default(),
        }
    }

    /// The channel configuration.
    #[must_use]
    pub fn config(&self) -> &Ddr4Config {
        &self.config
    }

    /// Total bytes moved over the channel so far.
    #[must_use]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Wire time for `bytes` (setup plus burst beats), without contention.
    #[must_use]
    pub fn service_time(&self, bytes: u64) -> Nanos {
        if bytes == 0 {
            return Nanos::ZERO;
        }
        let bursts = bytes.div_ceil(self.config.burst_bytes);
        let burst_bytes = bursts * self.config.burst_bytes;
        let wire_ns = burst_bytes as f64 / self.config.bandwidth_bytes_per_sec * 1e9;
        self.config.access_latency + Nanos::from_nanos_f64(wire_ns)
    }

    /// Moves `bytes` over the channel starting no earlier than `now`.
    pub fn transfer(&mut self, bytes: u64, now: Nanos) -> Transfer {
        let service = match self.service_memo.lookup(bytes) {
            Some(service) => service,
            None => {
                let service = self.service_time(bytes);
                self.service_memo.insert(bytes, service);
                service
            }
        };
        let grant = self.bus.acquire(now, service);
        self.bytes_moved += bytes;
        Transfer {
            finished_at: grant.end,
            service,
            wait: grant.wait,
        }
    }

    /// Reserves the channel until `until` without moving data (used while the
    /// lock register hands bus mastership to the NVMe controller).
    pub fn hold_until(&mut self, until: Nanos) {
        self.bus.hold_until(until);
    }

    /// Channel utilisation over `[0, horizon]`.
    #[must_use]
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        self.bus.utilization(horizon)
    }

    /// Resets the channel schedule and counters.
    pub fn reset(&mut self) {
        self.bus.reset();
        self.bytes_moved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_kb_transfer_matches_bandwidth() {
        let ch = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        let t = ch.service_time(4096);
        // 4096 B / 20 GB/s = 204.8 ns + 14 ns access.
        assert!(
            t >= Nanos::from_nanos(210) && t <= Nanos::from_nanos(230),
            "{t}"
        );
    }

    #[test]
    fn zero_byte_transfer_is_free() {
        let mut ch = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        assert_eq!(ch.service_time(0), Nanos::ZERO);
        let t = ch.transfer(0, Nanos::from_nanos(5));
        assert_eq!(t.finished_at, Nanos::from_nanos(5));
    }

    #[test]
    fn sub_burst_transfers_round_up() {
        let ch = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        assert_eq!(ch.service_time(1), ch.service_time(64));
        assert!(ch.service_time(65) > ch.service_time(64));
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut ch = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        let a = ch.transfer(4096, Nanos::ZERO);
        let b = ch.transfer(4096, Nanos::ZERO);
        assert_eq!(a.wait, Nanos::ZERO);
        assert_eq!(b.wait, a.service);
        assert_eq!(ch.bytes_moved(), 8192);
    }

    #[test]
    fn hold_until_blocks_later_transfers() {
        let mut ch = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        ch.hold_until(Nanos::from_micros(1));
        let t = ch.transfer(64, Nanos::ZERO);
        assert!(t.finished_at > Nanos::from_micros(1));
    }

    #[test]
    fn memoized_transfers_match_service_time_for_alternating_sizes() {
        let mut ch = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        let reference = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        let mut now = Nanos::ZERO;
        // Alternate three sizes so the two-entry memo keeps evicting; every
        // grant's service span must still equal the uncached computation.
        for i in 0..64u64 {
            let bytes = [64u64, 8192, 65, 0][i as usize % 4];
            let t = ch.transfer(bytes, now);
            assert_eq!(t.service, reference.service_time(bytes), "bytes={bytes}");
            now = t.finished_at;
        }
    }

    #[test]
    fn ddr4_2133_is_slower_than_2666() {
        let slow = Ddr4Channel::new(Ddr4Config::ddr4_2133());
        let fast = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        assert!(slow.service_time(4096) > fast.service_time(4096));
    }
}
