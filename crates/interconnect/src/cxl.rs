//! CXL link model.
//!
//! The CXL-attached archive variant moves pages across a CXL.mem-style link
//! instead of the PCIe data path or the DDR4 register interface. The model
//! captures what distinguishes CXL from PCIe at the transaction level: the
//! same serial PHY, but flit-based framing (68-byte flits carrying 64 bytes
//! of payload) instead of transaction-layer packets, so a transfer pays two
//! fixed port crossings rather than a per-packet header tax. The resulting
//! bandwidth ordering is the architectural point: a CXL x4 port lands
//! between PCIe 3.0 x4 (~4 GB/s) and a DDR4 channel (~20 GB/s), so a
//! CXL-attached archive outruns the loosely-coupled PCIe attach while still
//! trailing the tightly-integrated DDR4 attach.

use hams_sim::{Nanos, Resource};
use serde::{Deserialize, Serialize};

use crate::ddr4::Transfer;

/// Configuration of a CXL link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CxlConfig {
    /// Number of PHY lanes.
    pub lanes: u32,
    /// Usable bandwidth per lane in bytes per second (Gen5 PHY: ~3.94 GB/s).
    pub lane_bandwidth_bytes_per_sec: f64,
    /// Flit payload bytes (CXL carries 64-byte slots).
    pub flit_payload_bytes: u64,
    /// Flit wire bytes including framing and CRC (68 per 64-byte payload).
    pub flit_wire_bytes: u64,
    /// Fixed latency of one port crossing (ingress or egress).
    pub port_latency: Nanos,
    /// Latency of submitting one NVMe command over the CXL.io path (doorbell
    /// plus command fetch) — cheaper than a PCIe BAR doorbell, dearer than
    /// the DDR4 register interface.
    pub command_overhead: Nanos,
}

impl CxlConfig {
    /// A CXL x4 port on a Gen5 PHY: ~14.8 GB/s usable after flit framing —
    /// between PCIe 3.0 x4 and a DDR4-2666 channel.
    #[must_use]
    pub fn cxl_x4() -> Self {
        CxlConfig {
            lanes: 4,
            lane_bandwidth_bytes_per_sec: 3.938e9,
            flit_payload_bytes: 64,
            flit_wire_bytes: 68,
            port_latency: Nanos::from_nanos(90),
            command_overhead: Nanos::from_nanos(200),
        }
    }

    /// Aggregate usable bandwidth in bytes of payload per second, after the
    /// flit-framing efficiency.
    #[must_use]
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        let efficiency = self.flit_payload_bytes as f64 / self.flit_wire_bytes.max(1) as f64;
        self.lane_bandwidth_bytes_per_sec * f64::from(self.lanes) * efficiency
    }
}

/// A CXL link with FCFS arbitration.
///
/// # Example
///
/// ```
/// use hams_interconnect::{CxlConfig, CxlLink, PcieConfig, PcieLink};
///
/// let cxl = CxlLink::new(CxlConfig::cxl_x4());
/// let pcie = PcieLink::new(PcieConfig::gen3_x4());
/// // Moving a 4 KB page over CXL beats PCIe 3.0 x4.
/// assert!(cxl.service_time(4096) < pcie.service_time(4096));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CxlLink {
    config: CxlConfig,
    link: Resource,
    bytes_moved: u64,
}

impl CxlLink {
    /// Creates an idle link.
    #[must_use]
    pub fn new(config: CxlConfig) -> Self {
        CxlLink {
            config,
            link: Resource::new("cxl-link"),
            bytes_moved: 0,
        }
    }

    /// The link configuration.
    #[must_use]
    pub fn config(&self) -> &CxlConfig {
        &self.config
    }

    /// Total bytes moved over the link.
    #[must_use]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Wire time for `bytes` — two port crossings plus the flit-framed
    /// payload time — without contention.
    #[must_use]
    pub fn service_time(&self, bytes: u64) -> Nanos {
        if bytes == 0 {
            return Nanos::ZERO;
        }
        let wire_ns = bytes as f64 / self.config.bandwidth_bytes_per_sec() * 1e9;
        self.config.port_latency * 2 + Nanos::from_nanos_f64(wire_ns)
    }

    /// Moves `bytes` over the link starting no earlier than `now`.
    pub fn transfer(&mut self, bytes: u64, now: Nanos) -> Transfer {
        let service = self.service_time(bytes);
        let grant = self.link.acquire(now, service);
        self.bytes_moved += bytes;
        Transfer {
            finished_at: grant.end,
            service,
            wait: grant.wait,
        }
    }

    /// Link utilisation over `[0, horizon]`.
    #[must_use]
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        self.link.utilization(horizon)
    }

    /// Resets the link schedule and counters.
    pub fn reset(&mut self) {
        self.link.reset();
        self.bytes_moved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddr4::{Ddr4Channel, Ddr4Config};
    use crate::pcie::{PcieConfig, PcieLink};

    #[test]
    fn cxl_x4_bandwidth_sits_between_pcie_g3x4_and_ddr4() {
        let cxl = CxlConfig::cxl_x4().bandwidth_bytes_per_sec();
        let pcie = PcieConfig::gen3_x4().bandwidth_bytes_per_sec();
        assert!(
            cxl > pcie * 2.0,
            "CXL ({cxl}) should clearly beat PCIe g3x4"
        );
        assert!(cxl < 20.0e9, "CXL x4 ({cxl}) must trail a DDR4 channel");
    }

    #[test]
    fn page_transfer_ordering_ddr4_cxl_pcie() {
        let cxl = CxlLink::new(CxlConfig::cxl_x4());
        let pcie = PcieLink::new(PcieConfig::gen3_x4());
        let ddr = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        for bytes in [4096u64, 32 * 1024, 128 * 1024] {
            assert!(
                ddr.service_time(bytes) < cxl.service_time(bytes),
                "{bytes}B: DDR4 must beat CXL"
            );
            assert!(
                cxl.service_time(bytes) < pcie.service_time(bytes),
                "{bytes}B: CXL must beat PCIe g3x4"
            );
        }
    }

    #[test]
    fn contention_queues_transfers() {
        let mut link = CxlLink::new(CxlConfig::cxl_x4());
        let a = link.transfer(4096, Nanos::ZERO);
        let b = link.transfer(4096, Nanos::ZERO);
        assert!(b.finished_at > a.finished_at);
        assert_eq!(b.wait, a.service);
        assert_eq!(link.bytes_moved(), 8192);
        link.reset();
        assert_eq!(link.bytes_moved(), 0);
    }

    #[test]
    fn zero_bytes_is_free() {
        let mut link = CxlLink::new(CxlConfig::cxl_x4());
        assert_eq!(link.transfer(0, Nanos::ZERO).service, Nanos::ZERO);
    }
}
