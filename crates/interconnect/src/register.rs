//! Register-based interface and lock register of the advanced HAMS design.
//!
//! Advanced HAMS detaches ULL-Flash from PCIe and puts its NVMe controller on
//! the DDR4 bus (§V-A, Fig. 12). Commands travel as 64-byte bursts written to
//! the device's data-buffer registers (CS# deselect of the NVDIMM, a write
//! command, then an 8-beat data burst); a *lock register* then hands bus
//! mastership to the NVMe controller so it can DMA directly against the
//! NVDIMM without colliding with the HAMS cache logic.

use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

use crate::ddr4::{Ddr4Channel, Transfer};

/// Who currently masters the shared DDR4 bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusMaster {
    /// The HAMS controller (memory-side cache logic).
    HamsController,
    /// The NVMe controller inside the DDR4-attached ULL-Flash.
    NvmeController,
}

/// Errors raised by the lock register protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockError {
    /// The lock is already held by the other master.
    AlreadyHeld(BusMaster),
    /// Release was attempted by a master that does not hold the lock.
    NotHeld,
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::AlreadyHeld(m) => write!(f, "lock register already held by {m:?}"),
            LockError::NotHeld => write!(f, "lock register is not held"),
        }
    }
}

impl std::error::Error for LockError {}

/// The single-bit lock register arbitrating NVDIMM access between the HAMS
/// cache logic and the DDR4-attached NVMe controller.
///
/// # Example
///
/// ```
/// use hams_interconnect::{BusMaster, LockRegister};
///
/// let mut lock = LockRegister::new();
/// lock.acquire(BusMaster::NvmeController).unwrap();
/// assert!(lock.acquire(BusMaster::HamsController).is_err());
/// lock.release(BusMaster::NvmeController).unwrap();
/// assert_eq!(lock.holder(), None);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockRegister {
    holder: Option<BusMaster>,
    acquisitions: u64,
    contentions: u64,
}

impl LockRegister {
    /// Creates an unlocked register.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The master currently holding the lock, if any.
    #[must_use]
    pub fn holder(&self) -> Option<BusMaster> {
        self.holder
    }

    /// Number of successful acquisitions.
    #[must_use]
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Number of acquisition attempts that found the lock held.
    #[must_use]
    pub fn contentions(&self) -> u64 {
        self.contentions
    }

    /// Attempts to take the lock for `master`.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::AlreadyHeld`] if another master holds it.
    pub fn acquire(&mut self, master: BusMaster) -> Result<(), LockError> {
        match self.holder {
            None => {
                self.holder = Some(master);
                self.acquisitions += 1;
                Ok(())
            }
            Some(current) if current == master => {
                // Re-acquisition by the current holder is idempotent.
                Ok(())
            }
            Some(current) => {
                self.contentions += 1;
                Err(LockError::AlreadyHeld(current))
            }
        }
    }

    /// Releases the lock held by `master`.
    ///
    /// # Errors
    ///
    /// Returns [`LockError::NotHeld`] if `master` does not hold the lock.
    pub fn release(&mut self, master: BusMaster) -> Result<(), LockError> {
        if self.holder == Some(master) {
            self.holder = None;
            Ok(())
        } else {
            Err(LockError::NotHeld)
        }
    }
}

/// Timing of the register-based command interface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegisterInterfaceConfig {
    /// DDR4 clock period; the CS# deselect plus write-command setup takes two
    /// of these before the burst (Fig. 12).
    pub command_setup: Nanos,
    /// Number of data beats per 64-byte command burst.
    pub burst_beats: u32,
}

impl RegisterInterfaceConfig {
    /// Default timing at DDR4-2666 (0.75 ns cycle, 8-beat burst).
    #[must_use]
    pub fn ddr4_2666() -> Self {
        RegisterInterfaceConfig {
            command_setup: Nanos::from_nanos(2),
            burst_beats: 8,
        }
    }
}

/// The register-based command path between the HAMS controller and the
/// DDR4-attached NVMe controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegisterInterface {
    config: RegisterInterfaceConfig,
    commands_sent: u64,
}

impl RegisterInterface {
    /// Creates the interface with the given timing.
    #[must_use]
    pub fn new(config: RegisterInterfaceConfig) -> Self {
        RegisterInterface {
            config,
            commands_sent: 0,
        }
    }

    /// Number of 64-byte commands pushed through the interface.
    #[must_use]
    pub fn commands_sent(&self) -> u64 {
        self.commands_sent
    }

    /// Writes one 64-byte NVMe command into the device's data-buffer
    /// registers over the shared DDR4 channel.
    ///
    /// The cost is the CS#/write-command setup plus a single 64-byte burst on
    /// the channel — a few nanoseconds, versus the ~µs doorbell/BAR round
    /// trip of the PCIe path.
    pub fn send_command(&mut self, channel: &mut Ddr4Channel, now: Nanos) -> Transfer {
        self.commands_sent += 1;
        let setup = self.config.command_setup;
        let t = channel.transfer(64, now + setup);
        Transfer {
            finished_at: t.finished_at,
            service: t.service + setup,
            wait: t.wait,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddr4::Ddr4Config;

    #[test]
    fn lock_is_exclusive_between_masters() {
        let mut lock = LockRegister::new();
        lock.acquire(BusMaster::HamsController).unwrap();
        assert_eq!(
            lock.acquire(BusMaster::NvmeController),
            Err(LockError::AlreadyHeld(BusMaster::HamsController))
        );
        assert_eq!(lock.contentions(), 1);
        lock.release(BusMaster::HamsController).unwrap();
        lock.acquire(BusMaster::NvmeController).unwrap();
        assert_eq!(lock.holder(), Some(BusMaster::NvmeController));
        assert_eq!(lock.acquisitions(), 2);
    }

    #[test]
    fn reacquisition_by_holder_is_idempotent() {
        let mut lock = LockRegister::new();
        lock.acquire(BusMaster::NvmeController).unwrap();
        lock.acquire(BusMaster::NvmeController).unwrap();
        assert_eq!(lock.acquisitions(), 1);
    }

    #[test]
    fn releasing_unheld_lock_is_an_error() {
        let mut lock = LockRegister::new();
        assert_eq!(
            lock.release(BusMaster::HamsController),
            Err(LockError::NotHeld)
        );
        lock.acquire(BusMaster::HamsController).unwrap();
        assert_eq!(
            lock.release(BusMaster::NvmeController),
            Err(LockError::NotHeld)
        );
    }

    #[test]
    fn command_send_is_nanoseconds_not_microseconds() {
        let mut iface = RegisterInterface::new(RegisterInterfaceConfig::ddr4_2666());
        let mut ch = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        let t = iface.send_command(&mut ch, Nanos::ZERO);
        assert!(t.finished_at < Nanos::from_nanos(50), "{}", t.finished_at);
        assert_eq!(iface.commands_sent(), 1);
    }

    #[test]
    fn command_send_contends_with_data_traffic() {
        let mut iface = RegisterInterface::new(RegisterInterfaceConfig::ddr4_2666());
        let mut ch = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        ch.transfer(4096, Nanos::ZERO); // outstanding page fill
        let t = iface.send_command(&mut ch, Nanos::ZERO);
        assert!(t.wait > Nanos::ZERO);
    }
}
