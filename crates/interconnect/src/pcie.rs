//! PCIe link model.
//!
//! ULL-Flash attaches over PCIe 3.0 x4 — 4 GB/s of raw bandwidth, far below
//! the 20 GB/s of a DDR4 channel, plus packetisation overhead for every
//! transaction-layer packet. This asymmetry is the first inefficiency the
//! advanced HAMS removes (§IV-C): in the baseline design every NVDIMM cache
//! miss crosses this link.

use hams_sim::{Nanos, Resource};
use serde::{Deserialize, Serialize};

use crate::ddr4::Transfer;

/// PCIe generation, determining per-lane bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcieGeneration {
    /// PCIe 3.0: ~0.985 GB/s per lane after 128b/130b encoding.
    Gen3,
    /// PCIe 4.0: ~1.97 GB/s per lane.
    Gen4,
}

impl PcieGeneration {
    /// Usable bandwidth per lane in bytes per second.
    #[must_use]
    pub fn lane_bandwidth_bytes_per_sec(self) -> f64 {
        match self {
            PcieGeneration::Gen3 => 0.985e9,
            PcieGeneration::Gen4 => 1.97e9,
        }
    }
}

/// Configuration of a PCIe link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcieConfig {
    /// Link generation.
    pub generation: PcieGeneration,
    /// Number of lanes.
    pub lanes: u32,
    /// Maximum transaction-layer packet payload in bytes.
    pub max_payload_bytes: u64,
    /// Fixed per-TLP overhead: header serialisation, DLLP acknowledgement,
    /// root-complex traversal.
    pub per_packet_overhead: Nanos,
}

impl PcieConfig {
    /// PCIe 3.0 x4 — the link both ULL-Flash and the Intel 750 use in the
    /// paper's testbed.
    #[must_use]
    pub fn gen3_x4() -> Self {
        PcieConfig {
            generation: PcieGeneration::Gen3,
            lanes: 4,
            max_payload_bytes: 4096,
            per_packet_overhead: Nanos::from_nanos(250),
        }
    }

    /// Aggregate link bandwidth in bytes per second.
    #[must_use]
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        self.generation.lane_bandwidth_bytes_per_sec() * f64::from(self.lanes)
    }
}

/// A PCIe link with FCFS arbitration.
///
/// # Example
///
/// ```
/// use hams_interconnect::{PcieConfig, PcieLink};
/// use hams_sim::Nanos;
///
/// let mut link = PcieLink::new(PcieConfig::gen3_x4());
/// let ddr_equivalent = 4096.0 / 20.0e9 * 1e9; // ~205 ns on DDR4
/// let t = link.transfer(4096, Nanos::ZERO);
/// assert!(t.service.as_nanos() as f64 > 4.0 * ddr_equivalent);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PcieLink {
    config: PcieConfig,
    link: Resource,
    bytes_moved: u64,
}

impl PcieLink {
    /// Creates an idle link.
    #[must_use]
    pub fn new(config: PcieConfig) -> Self {
        PcieLink {
            config,
            link: Resource::new("pcie-link"),
            bytes_moved: 0,
        }
    }

    /// The link configuration.
    #[must_use]
    pub fn config(&self) -> &PcieConfig {
        &self.config
    }

    /// Total bytes moved over the link.
    #[must_use]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Wire time for `bytes`, including per-packet overhead, without
    /// contention.
    #[must_use]
    pub fn service_time(&self, bytes: u64) -> Nanos {
        if bytes == 0 {
            return Nanos::ZERO;
        }
        let packets = bytes.div_ceil(self.config.max_payload_bytes);
        let wire_ns = bytes as f64 / self.config.bandwidth_bytes_per_sec() * 1e9;
        self.config.per_packet_overhead * packets + Nanos::from_nanos_f64(wire_ns)
    }

    /// Moves `bytes` over the link starting no earlier than `now`.
    pub fn transfer(&mut self, bytes: u64, now: Nanos) -> Transfer {
        let service = self.service_time(bytes);
        let grant = self.link.acquire(now, service);
        self.bytes_moved += bytes;
        Transfer {
            finished_at: grant.end,
            service,
            wait: grant.wait,
        }
    }

    /// Link utilisation over `[0, horizon]`.
    #[must_use]
    pub fn utilization(&self, horizon: Nanos) -> f64 {
        self.link.utilization(horizon)
    }

    /// Resets the link schedule and counters.
    pub fn reset(&mut self) {
        self.link.reset();
        self.bytes_moved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_x4_bandwidth_is_about_4_gbs() {
        let c = PcieConfig::gen3_x4();
        let gbs = c.bandwidth_bytes_per_sec() / 1e9;
        assert!(gbs > 3.8 && gbs < 4.1, "bandwidth {gbs} GB/s");
    }

    #[test]
    fn four_kb_takes_over_a_microsecond() {
        let link = PcieLink::new(PcieConfig::gen3_x4());
        let t = link.service_time(4096);
        assert!(
            t > Nanos::from_nanos(1_200) && t < Nanos::from_nanos(1_600),
            "{t}"
        );
    }

    #[test]
    fn pcie_is_slower_than_ddr4_for_the_same_payload() {
        use crate::ddr4::{Ddr4Channel, Ddr4Config};
        let pcie = PcieLink::new(PcieConfig::gen3_x4());
        let ddr = Ddr4Channel::new(Ddr4Config::ddr4_2666());
        assert!(pcie.service_time(4096) > ddr.service_time(4096) * 4);
    }

    #[test]
    fn large_transfers_pay_per_packet_overhead() {
        let link = PcieLink::new(PcieConfig::gen3_x4());
        let one = link.service_time(4096);
        let four = link.service_time(16 * 1024);
        assert!(four > one * 3, "payload scaling lost: {one} vs {four}");
    }

    #[test]
    fn contention_queues_transfers() {
        let mut link = PcieLink::new(PcieConfig::gen3_x4());
        let a = link.transfer(4096, Nanos::ZERO);
        let b = link.transfer(4096, Nanos::ZERO);
        assert!(b.finished_at > a.finished_at);
        assert_eq!(b.wait, a.service);
        assert_eq!(link.bytes_moved(), 8192);
    }

    #[test]
    fn zero_bytes_is_free() {
        let mut link = PcieLink::new(PcieConfig::gen3_x4());
        assert_eq!(link.transfer(0, Nanos::ZERO).service, Nanos::ZERO);
    }

    #[test]
    fn gen4_doubles_gen3() {
        let g3 = PcieGeneration::Gen3.lane_bandwidth_bytes_per_sec();
        let g4 = PcieGeneration::Gen4.lane_bandwidth_bytes_per_sec();
        assert!((g4 / g3 - 2.0).abs() < 0.01);
    }
}
