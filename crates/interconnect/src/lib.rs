//! Interconnect models for the HAMS reproduction: the DDR4 memory channel,
//! the PCIe link, the register-based interface plus lock register that
//! the advanced (tightly-integrated) HAMS uses instead of PCIe, and the CXL
//! link the CXL-attached archive variant routes its fills through.
//!
//! The bandwidth asymmetry between these two paths — ~20 GB/s per DDR4
//! channel versus ~4 GB/s for PCIe 3.0 x4 — is the architectural motivation
//! for advanced HAMS (§IV-C): in the baseline design every NVDIMM cache miss
//! crosses the slower link and pays PCIe packetisation on top.
//!
//! # Example
//!
//! ```
//! use hams_interconnect::{Ddr4Channel, Ddr4Config, PcieConfig, PcieLink};
//! use hams_sim::Nanos;
//!
//! let ddr = Ddr4Channel::new(Ddr4Config::ddr4_2666());
//! let pcie = PcieLink::new(PcieConfig::gen3_x4());
//! // Moving a 4 KB page is several times more expensive over PCIe.
//! assert!(pcie.service_time(4096) > ddr.service_time(4096) * 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cxl;
pub mod ddr4;
pub mod pcie;
pub mod register;

pub use cxl::{CxlConfig, CxlLink};
pub use ddr4::{Ddr4Channel, Ddr4Config, Transfer};
pub use pcie::{PcieConfig, PcieGeneration, PcieLink};
pub use register::{
    BusMaster, LockError, LockRegister, RegisterInterface, RegisterInterfaceConfig,
};
