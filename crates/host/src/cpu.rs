//! CPU core model.
//!
//! The paper's evaluation runs on a quad-core 2 GHz ARM v8 system (Table II)
//! and reports IPC as a first-class metric (Fig. 7b). The model keeps a core
//! simple: instructions retire at a configurable base IPC when they are not
//! stalled on memory, and every memory stall is charged explicitly by the
//! platform composition. That is sufficient to reproduce relative IPC and
//! execution-time breakdowns.

use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

/// Configuration of one CPU core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Core clock frequency in hertz.
    pub frequency_hz: f64,
    /// Instructions per cycle sustained when not stalled on memory.
    pub base_ipc: f64,
    /// Cost of one OS context switch (two are paid per blocking page fault).
    pub context_switch: Nanos,
}

impl CpuConfig {
    /// The paper's gem5 configuration: 2 GHz ARM v8, modest IPC.
    #[must_use]
    pub fn paper_default() -> Self {
        CpuConfig {
            frequency_hz: 2.0e9,
            base_ipc: 1.2,
            context_switch: Nanos::from_micros(2),
        }
    }

    /// The 4 GHz Intel i7-4790K used for the real-device characterisation of
    /// §III-A.
    #[must_use]
    pub fn i7_4790k() -> Self {
        CpuConfig {
            frequency_hz: 4.0e9,
            base_ipc: 2.0,
            context_switch: Nanos::from_nanos(1_500),
        }
    }
}

/// A single CPU core with explicit stall accounting.
///
/// # Example
///
/// ```
/// use hams_host::{CpuConfig, CpuModel};
/// use hams_sim::Nanos;
///
/// let mut cpu = CpuModel::new(CpuConfig::paper_default());
/// cpu.retire(1_000_000);
/// cpu.stall(Nanos::from_micros(50));
/// assert!(cpu.ipc() < cpu.config().base_ipc);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpuModel {
    config: CpuConfig,
    instructions: u64,
    compute_time: Nanos,
    stall_time: Nanos,
}

impl CpuModel {
    /// Creates an idle core.
    #[must_use]
    pub fn new(config: CpuConfig) -> Self {
        CpuModel {
            config,
            instructions: 0,
            compute_time: Nanos::ZERO,
            stall_time: Nanos::ZERO,
        }
    }

    /// The core configuration.
    #[must_use]
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Time to execute `instructions` instructions with no memory stalls.
    #[must_use]
    pub fn compute_time_for(&self, instructions: u64) -> Nanos {
        if instructions == 0 {
            return Nanos::ZERO;
        }
        let cycles = instructions as f64 / self.config.base_ipc;
        Nanos::from_nanos_f64(cycles / self.config.frequency_hz * 1e9)
    }

    /// Retires `instructions` instructions, accumulating their compute time.
    /// Returns the time spent.
    pub fn retire(&mut self, instructions: u64) -> Nanos {
        let t = self.compute_time_for(instructions);
        self.instructions += instructions;
        self.compute_time += t;
        t
    }

    /// Charges a memory stall of duration `t`.
    pub fn stall(&mut self, t: Nanos) {
        self.stall_time += t;
    }

    /// Total instructions retired.
    #[must_use]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Time spent computing (not stalled).
    #[must_use]
    pub fn compute_time(&self) -> Nanos {
        self.compute_time
    }

    /// Time spent stalled on memory or the OS.
    #[must_use]
    pub fn stall_time(&self) -> Nanos {
        self.stall_time
    }

    /// Total wall-clock time of the core so far.
    #[must_use]
    pub fn total_time(&self) -> Nanos {
        self.compute_time + self.stall_time
    }

    /// Effective instructions per cycle over the whole execution, the metric
    /// of Fig. 7b.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        let total = self.total_time();
        if total.is_zero() {
            return 0.0;
        }
        let cycles = total.as_secs_f64() * self.config.frequency_hz;
        self.instructions as f64 / cycles
    }

    /// Resets all accounting.
    pub fn reset(&mut self) {
        self.instructions = 0;
        self.compute_time = Nanos::ZERO;
        self.stall_time = Nanos::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_matches_frequency_and_ipc() {
        let cpu = CpuModel::new(CpuConfig::paper_default());
        // 2.4e9 instructions at 1.2 IPC and 2 GHz = 1 second.
        let t = cpu.compute_time_for(2_400_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6, "{t}");
        assert_eq!(cpu.compute_time_for(0), Nanos::ZERO);
    }

    #[test]
    fn unstalled_ipc_equals_base_ipc() {
        let mut cpu = CpuModel::new(CpuConfig::paper_default());
        cpu.retire(1_000_000);
        assert!((cpu.ipc() - cpu.config().base_ipc).abs() < 0.01);
    }

    #[test]
    fn stalls_depress_ipc() {
        let mut cpu = CpuModel::new(CpuConfig::paper_default());
        cpu.retire(1_000);
        let unstalled = cpu.ipc();
        cpu.stall(Nanos::from_micros(100));
        assert!(cpu.ipc() < unstalled / 10.0);
    }

    #[test]
    fn empty_core_has_zero_ipc() {
        let cpu = CpuModel::new(CpuConfig::paper_default());
        assert_eq!(cpu.ipc(), 0.0);
        assert_eq!(cpu.total_time(), Nanos::ZERO);
    }

    #[test]
    fn reset_clears_accounting() {
        let mut cpu = CpuModel::new(CpuConfig::i7_4790k());
        cpu.retire(100);
        cpu.stall(Nanos::from_nanos(10));
        cpu.reset();
        assert_eq!(cpu.instructions(), 0);
        assert_eq!(cpu.total_time(), Nanos::ZERO);
    }
}
