//! Memory-mapped-file (mmap / MMF) software-stack cost model.
//!
//! This is the baseline the paper measures against: expanding NVDIMM with an
//! SSD through `mmap` means every page fault runs the page-fault handler,
//! takes the inode lock, builds a `bio`, traverses the multi-queue block
//! layer and the NVMe driver, and copies data between user and kernel space
//! (§II-B). The paper measures the whole software path at 15–20 µs — about
//! 6× the 3 µs Z-NAND read it fronts (§III-B).

use hams_sim::{ComponentId, LatencyBreakdown, Nanos};
use serde::{Deserialize, Serialize};

/// Per-component costs of the MMF path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MmfCostModel {
    /// Page-fault handler: VMA lookup, page allocation, PTE creation.
    pub page_fault_handling: Nanos,
    /// One scheduler context switch; a blocking fault pays two.
    pub context_switch: Nanos,
    /// File-system work: inode lock, metadata, `bio` construction.
    pub filesystem: Nanos,
    /// Multi-queue block layer: software queue, dispatch queue scheduling.
    pub blk_mq: Nanos,
    /// NVMe driver: SQ entry build, doorbell write, ISR and CQ handling.
    pub nvme_driver: Nanos,
    /// Bandwidth of the user/kernel data copy, bytes per second.
    pub copy_bandwidth_bytes_per_sec: f64,
}

impl MmfCostModel {
    /// Costs calibrated to the paper's measurement that the software
    /// operations of MMF consume 15–20 µs per fault (§III-B), with the
    /// context switches and page-fault handling dominating.
    #[must_use]
    pub fn linux_4_9() -> Self {
        MmfCostModel {
            page_fault_handling: Nanos::from_nanos(3_500),
            context_switch: Nanos::from_nanos(2_000),
            filesystem: Nanos::from_nanos(2_500),
            blk_mq: Nanos::from_nanos(1_800),
            nvme_driver: Nanos::from_nanos(1_200),
            copy_bandwidth_bytes_per_sec: 6.0e9,
        }
    }

    /// A polled, DAX-style shortened stack (no block layer) used to model the
    /// FlatFlash MMIO path's software component.
    #[must_use]
    pub fn dax_like() -> Self {
        MmfCostModel {
            page_fault_handling: Nanos::from_nanos(1_200),
            context_switch: Nanos::ZERO,
            filesystem: Nanos::from_nanos(400),
            blk_mq: Nanos::ZERO,
            nvme_driver: Nanos::ZERO,
            copy_bandwidth_bytes_per_sec: 6.0e9,
        }
    }

    /// Time to copy `bytes` between user and kernel space.
    #[must_use]
    pub fn copy_time(&self, bytes: u64) -> Nanos {
        if bytes == 0 {
            return Nanos::ZERO;
        }
        Nanos::from_nanos_f64(bytes as f64 / self.copy_bandwidth_bytes_per_sec * 1e9)
    }

    /// The software overhead of one blocking page fault that reads `bytes`
    /// from storage, as a named breakdown:
    ///
    /// * `"mmap"` — page-fault handling plus two context switches,
    /// * `"io_stack"` — filesystem + blk-mq + NVMe driver + data copy.
    ///
    /// The storage device time itself is *not* included; the platform adds it.
    #[must_use]
    pub fn fault_overhead(&self, bytes: u64) -> LatencyBreakdown {
        let mut b = LatencyBreakdown::new();
        b.add(
            ComponentId::MMAP,
            self.page_fault_handling + self.context_switch * 2,
        );
        b.add(
            ComponentId::IO_STACK,
            self.filesystem + self.blk_mq + self.nvme_driver + self.copy_time(bytes),
        );
        b
    }

    /// The software overhead of writing back a dirty page of `bytes` (no
    /// context switches: write-back is asynchronous, but the I/O stack is
    /// still traversed).
    #[must_use]
    pub fn writeback_overhead(&self, bytes: u64) -> LatencyBreakdown {
        let mut b = LatencyBreakdown::new();
        b.add(ComponentId::MMAP, self.page_fault_handling / 2);
        b.add(
            ComponentId::IO_STACK,
            self.filesystem + self.blk_mq + self.nvme_driver + self.copy_time(bytes),
        );
        b
    }

    /// Total software time of one blocking fault (convenience).
    #[must_use]
    pub fn fault_total(&self, bytes: u64) -> Nanos {
        self.fault_overhead(bytes).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_fault_cost_is_in_the_papers_band() {
        let m = MmfCostModel::linux_4_9();
        let total = m.fault_total(4096);
        assert!(
            total >= Nanos::from_micros(10) && total <= Nanos::from_micros(20),
            "fault software cost {total} outside 10-20us"
        );
    }

    #[test]
    fn software_cost_dwarfs_z_nand_read() {
        let m = MmfCostModel::linux_4_9();
        let znand_read = Nanos::from_micros(3);
        assert!(m.fault_total(4096) > znand_read * 4);
    }

    #[test]
    fn breakdown_names_match_figure_7a() {
        let m = MmfCostModel::linux_4_9();
        let b = m.fault_overhead(4096);
        assert!(b.component("mmap") > Nanos::ZERO);
        assert!(b.component("io_stack") > Nanos::ZERO);
        assert_eq!(b.total(), b.component("mmap") + b.component("io_stack"));
    }

    #[test]
    fn copy_time_scales_with_bytes() {
        let m = MmfCostModel::linux_4_9();
        assert_eq!(m.copy_time(0), Nanos::ZERO);
        assert!(m.copy_time(1 << 20) > m.copy_time(4096) * 200);
    }

    #[test]
    fn writeback_is_cheaper_than_fault() {
        let m = MmfCostModel::linux_4_9();
        assert!(m.writeback_overhead(4096).total() < m.fault_overhead(4096).total());
    }

    #[test]
    fn dax_stack_is_much_shorter() {
        let dax = MmfCostModel::dax_like();
        let full = MmfCostModel::linux_4_9();
        assert!(dax.fault_total(4096) * 3 < full.fault_total(4096));
    }
}
