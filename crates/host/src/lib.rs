//! Host-side models: the CPU core, the MMU/TLB/page table, and the
//! memory-mapped-file (mmap) software stack that the paper's baseline pays on
//! every page fault.
//!
//! # Example
//!
//! ```
//! use hams_host::{CpuConfig, CpuModel, MmfCostModel, Mmu, TlbConfig, Translation};
//! use hams_sim::Nanos;
//!
//! let mut cpu = CpuModel::new(CpuConfig::paper_default());
//! let mut mmu = Mmu::new(TlbConfig::paper_default(), 4096);
//! let mmf = MmfCostModel::linux_4_9();
//!
//! // A store to an unmapped page: the MMF baseline pays the software stack.
//! let (outcome, _) = mmu.translate(0xdead_beef);
//! assert_eq!(outcome, Translation::PageFault);
//! cpu.stall(mmf.fault_total(4096));
//! mmu.install(0xdead_beef);
//! assert!(cpu.stall_time() > Nanos::from_micros(10));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cpu;
pub mod mmf;
pub mod mmu;

pub use cpu::{CpuConfig, CpuModel};
pub use mmf::MmfCostModel;
pub use mmu::{Mmu, MmuStats, TlbConfig, Translation};
