//! MMU, TLB and page-table model.
//!
//! The MMU is what HAMS serves: every load/store is translated, and — in the
//! MMF baseline — a missing page triggers the whole page-fault / storage-stack
//! path of §II-B. The model tracks which virtual pages are resident (in
//! NVDIMM / DRAM) and charges TLB hits, TLB misses (page-table walks) and page
//! faults separately.

use std::collections::{HashMap, HashSet, VecDeque};

use hams_sim::Nanos;
use serde::{Deserialize, Serialize};

/// Configuration of the TLB and page-walk costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of TLB entries.
    pub entries: usize,
    /// Latency of a TLB hit.
    pub hit_latency: Nanos,
    /// Latency of a page-table walk on a TLB miss (a few memory accesses).
    pub walk_latency: Nanos,
}

impl TlbConfig {
    /// A typical 1536-entry second-level TLB with a ~100 ns walk.
    #[must_use]
    pub fn paper_default() -> Self {
        TlbConfig {
            entries: 1536,
            hit_latency: Nanos::from_nanos(1),
            walk_latency: Nanos::from_nanos(100),
        }
    }

    /// A tiny TLB for unit tests.
    #[must_use]
    pub fn tiny_for_tests() -> Self {
        TlbConfig {
            entries: 4,
            hit_latency: Nanos::from_nanos(1),
            walk_latency: Nanos::from_nanos(100),
        }
    }
}

/// The outcome of one MMU translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Translation {
    /// TLB hit and the page is resident.
    TlbHit,
    /// TLB miss, page-table walk succeeded (page resident).
    TlbMissResident,
    /// The page is not resident: a page fault must be taken (MMF baseline) or
    /// the access is forwarded to the MoS controller (HAMS).
    PageFault,
}

/// Accounting counters for the MMU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmuStats {
    /// Translations that hit in the TLB.
    pub tlb_hits: u64,
    /// Translations that walked the page table.
    pub tlb_misses: u64,
    /// Translations that found no resident page.
    pub page_faults: u64,
}

impl MmuStats {
    /// TLB hit rate in `[0, 1]`.
    #[must_use]
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            0.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }
}

/// MMU with a FIFO TLB and a residency-tracking page table.
///
/// # Example
///
/// ```
/// use hams_host::{Mmu, TlbConfig, Translation};
///
/// let mut mmu = Mmu::new(TlbConfig::paper_default(), 4096);
/// let (outcome, _) = mmu.translate(0x1234);
/// assert_eq!(outcome, Translation::PageFault);
/// mmu.install(0x1234);
/// let (outcome, _) = mmu.translate(0x1234);
/// assert_ne!(outcome, Translation::PageFault);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mmu {
    config: TlbConfig,
    page_size: u64,
    tlb: VecDeque<u64>,
    tlb_set: HashSet<u64>,
    resident: HashMap<u64, bool>,
    stats: MmuStats,
}

impl Mmu {
    /// Creates an MMU translating `page_size`-byte pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    #[must_use]
    pub fn new(config: TlbConfig, page_size: u64) -> Self {
        assert!(page_size > 0, "page size must be non-zero");
        Mmu {
            config,
            page_size,
            tlb: VecDeque::with_capacity(config.entries),
            tlb_set: HashSet::with_capacity(config.entries),
            resident: HashMap::new(),
            stats: MmuStats::default(),
        }
    }

    /// Page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Accounting counters.
    #[must_use]
    pub fn stats(&self) -> &MmuStats {
        &self.stats
    }

    /// Virtual page number of a byte address.
    #[must_use]
    pub fn vpn(&self, addr: u64) -> u64 {
        addr / self.page_size
    }

    /// Number of resident pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Translates `addr`, returning the outcome and the translation latency
    /// (TLB hit latency or walk latency; the page-fault service itself is
    /// charged by the platform).
    pub fn translate(&mut self, addr: u64) -> (Translation, Nanos) {
        let vpn = self.vpn(addr);
        if self.tlb_set.contains(&vpn) {
            self.stats.tlb_hits += 1;
            if self.resident.contains_key(&vpn) {
                return (Translation::TlbHit, self.config.hit_latency);
            }
            // A stale TLB entry for an evicted page behaves like a fault.
            self.stats.page_faults += 1;
            return (Translation::PageFault, self.config.walk_latency);
        }
        self.stats.tlb_misses += 1;
        if self.resident.contains_key(&vpn) {
            self.insert_tlb(vpn);
            (Translation::TlbMissResident, self.config.walk_latency)
        } else {
            self.stats.page_faults += 1;
            (Translation::PageFault, self.config.walk_latency)
        }
    }

    /// Marks the page containing `addr` resident (page fault completed or
    /// MoS fill finished) and installs its translation in the TLB.
    pub fn install(&mut self, addr: u64) {
        let vpn = self.vpn(addr);
        self.resident.insert(vpn, false);
        self.insert_tlb(vpn);
    }

    /// Marks the page containing `addr` dirty. No-op for non-resident pages.
    pub fn mark_dirty(&mut self, addr: u64) {
        let vpn = self.vpn(addr);
        if let Some(d) = self.resident.get_mut(&vpn) {
            *d = true;
        }
    }

    /// Evicts the page containing `addr`, returning whether it was dirty.
    /// Returns `None` if the page was not resident.
    pub fn evict(&mut self, addr: u64) -> Option<bool> {
        let vpn = self.vpn(addr);
        self.resident.remove(&vpn)
    }

    fn insert_tlb(&mut self, vpn: u64) {
        if self.tlb_set.contains(&vpn) {
            return;
        }
        if self.tlb.len() >= self.config.entries {
            if let Some(old) = self.tlb.pop_front() {
                self.tlb_set.remove(&old);
            }
        }
        self.tlb.push_back(vpn);
        self.tlb_set.insert(vpn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mmu() -> Mmu {
        Mmu::new(TlbConfig::tiny_for_tests(), 4096)
    }

    #[test]
    fn unmapped_access_faults() {
        let mut m = mmu();
        let (t, lat) = m.translate(0x5000);
        assert_eq!(t, Translation::PageFault);
        assert_eq!(lat, Nanos::from_nanos(100));
        assert_eq!(m.stats().page_faults, 1);
    }

    #[test]
    fn install_makes_page_resident_and_cached() {
        let mut m = mmu();
        m.install(0x5000);
        let (t, lat) = m.translate(0x5123);
        assert_eq!(t, Translation::TlbHit);
        assert_eq!(lat, Nanos::from_nanos(1));
    }

    #[test]
    fn tlb_capacity_evicts_fifo() {
        let mut m = mmu();
        for i in 0..5u64 {
            m.install(i * 4096);
        }
        // Page 0's translation was evicted from the 4-entry TLB but the page
        // is still resident, so this is a walk, not a fault.
        let (t, _) = m.translate(0);
        assert_eq!(t, Translation::TlbMissResident);
        assert_eq!(m.stats().tlb_misses, 1);
    }

    #[test]
    fn evicted_page_faults_again() {
        let mut m = mmu();
        m.install(0x1000);
        m.mark_dirty(0x1000);
        assert_eq!(m.evict(0x1000), Some(true));
        let (t, _) = m.translate(0x1000);
        assert_eq!(t, Translation::PageFault);
        assert_eq!(m.evict(0x9999_0000), None);
    }

    #[test]
    fn hit_rate_reflects_traffic() {
        let mut m = mmu();
        m.install(0);
        for _ in 0..9 {
            m.translate(64);
        }
        m.translate(1 << 30); // one fault / miss
        assert!(m.stats().tlb_hit_rate() > 0.8);
    }

    #[test]
    fn vpn_uses_page_size() {
        let m = Mmu::new(TlbConfig::paper_default(), 128 * 1024);
        assert_eq!(m.vpn(0), 0);
        assert_eq!(m.vpn(128 * 1024), 1);
        assert_eq!(m.page_size(), 128 * 1024);
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn zero_page_size_panics() {
        let _ = Mmu::new(TlbConfig::paper_default(), 0);
    }
}
