//! Offline stand-in for the real `serde` crate.
//!
//! The build container has no access to a crates registry, so the workspace
//! ships this shim as a path dependency. It provides exactly the surface the
//! HAMS crates use today — `use serde::{Deserialize, Serialize};` plus the
//! two derives — with the derives expanding to nothing. When registry access
//! is available, point the workspace `serde` entry at crates.io instead; the
//! source code needs no changes.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. The no-op derive does not
/// implement it; it exists so trait bounds written against `serde` compile.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
