//! Offline stand-in for the real `criterion` crate.
//!
//! The build container has no crates-registry access, so the workspace ships
//! this shim as a path dependency. It supports the harness surface the HAMS
//! benches use — `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `finish`, `criterion_group!`, `criterion_main!` and
//! [`black_box`] — and reports mean / min / max wall-clock time per benchmark
//! to stdout. There is no statistical analysis, HTML report, or baseline
//! comparison; swap the path dependency for crates.io `criterion` to get
//! those back. No source changes are required.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work, mirroring `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle, one per `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("  {id}: no samples recorded");
            return self;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "  {id}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
            samples.len()
        );
        self
    }

    /// Ends the group (the shim keeps this for API compatibility).
    pub fn finish(&mut self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one untimed warm-up call, then `sample_size` timed
    /// calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a group-runner function invoking each bench with a fresh
/// [`Criterion`], mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            $(
                let mut criterion = $crate::Criterion::default();
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_to(n: u64) -> u64 {
        (0..n).fold(0, u64::wrapping_add)
    }

    fn bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum_to_1000", |b| b.iter(|| sum_to(black_box(1000))));
        group.finish();
    }

    criterion_group!(benches, bench);

    #[test]
    fn harness_runs_and_samples() {
        benches();
    }

    #[test]
    fn bencher_records_sample_size_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 4,
        };
        b.iter(|| sum_to(10));
        assert_eq!(b.samples.len(), 4);
    }
}
