//! Offline stand-in for the real `serde_derive` crate.
//!
//! This build environment has no registry access, so the workspace vendors a
//! minimal shim: `#[derive(Serialize, Deserialize)]` parses (including
//! `#[serde(...)]` attributes) and expands to nothing. Swap the `serde`
//! path dependency in the workspace manifest for the real crates.io package
//! to get actual serialization support; no source changes are required.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts the input and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts the input and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
