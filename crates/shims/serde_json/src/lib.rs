//! Offline stand-in for the parts of `serde_json` this workspace handles JSON
//! with: [`from_str`] into a dynamically typed [`Value`] tree, the
//! `get`/`as_*` accessors the real crate's `Value` offers, and [`to_string`]
//! to render a [`Value`] back out (used by the benchmark trajectory pruner's
//! round-trip validation). There is no typed serialization or
//! deserialization — the workspace writes its documents through its own
//! formatters; swap in the real crate (see `crates/shims/README.md`) to get
//! both.
//!
//! The parser is a strict recursive-descent pass over the input bytes:
//! objects, arrays, strings (with the full escape set including `\uXXXX`
//! surrogate pairs), numbers (as `f64`), booleans and `null`. Errors carry
//! the 1-based line and column of the offending byte, which is the part the
//! workspace actually relies on — the `--gate` parser's whole job is to fail
//! loudly and precisely on malformed trajectory files.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like the real crate's default).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, key-ordered.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member map, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Whether this is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// A parse failure, positioned at the offending input byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    /// 1-based line of the failure.
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the failure.
    #[must_use]
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.msg, self.line, self.column
        )
    }
}

impl std::error::Error for Error {}

/// The real crate's result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

/// Renders a [`Value`] as compact JSON (no whitespace), like the real
/// crate's `to_string` for a `Value` argument. Numbers that are exactly
/// integral print without a fractional part so round-tripping an integer
/// document reproduces integer literals; object keys keep the map's sorted
/// order. Always succeeds — the `Result` matches the real crate's signature.
pub fn to_string(value: &Value) -> Result<String> {
    let mut out = String::new();
    write_value(value, &mut out);
    Ok(out)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        // The Value parser never produces these; render the real crate's
        // lossy fallback rather than emitting invalid JSON.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error {
            msg: msg.to_owned(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("expected a JSON value")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // A high surrogate must be followed by `\uXXXX`
                            // holding the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.error("unpaired surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.error("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.error("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.error("invalid escape")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.error("control character in string"));
                }
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 straight from the input,
                    // which is valid UTF-8 by `&str` construction.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    if self.pos > self.bytes.len() {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("invalid hex digit in unicode escape")),
            };
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => {
                self.pos = start;
                Err(self.error("invalid number"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"runs": [{"label": "ci", "cells": [{"ns": 12.5, "ok": true}]}, null]}"#;
        let v = from_str(doc).unwrap();
        let runs = v.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 2);
        assert!(runs[1].is_null());
        let cell = &runs[0].get("cells").unwrap().as_array().unwrap()[0];
        assert_eq!(cell.get("ns").unwrap().as_f64(), Some(12.5));
        assert_eq!(cell.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(runs[0].get("label").unwrap().as_str(), Some("ci"));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = from_str(r#""a\n\t\"\\ é 😀 é""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\ é 😀 é"));
    }

    #[test]
    fn errors_carry_line_and_column() {
        let err = from_str("{\n  \"a\": 1,\n  \"b\": oops\n}").unwrap_err();
        assert_eq!(err.line(), 3);
        assert_eq!(err.column(), 8);
        assert!(err.to_string().contains("line 3 column 8"));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str("{} x").is_err());
        assert!(from_str("12 34").is_err());
    }

    #[test]
    fn integer_accessor_requires_integrality() {
        assert_eq!(from_str("3.5").unwrap().as_u64(), None);
        assert_eq!(from_str("-2").unwrap().as_u64(), None);
        assert_eq!(from_str("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("42").unwrap().as_f64(), Some(42.0));
    }

    #[test]
    fn to_string_round_trips_documents() {
        let doc =
            r#"{"runs":[{"cells":[{"ns":12.5,"ok":true}],"label":"ci"}],"n":-3,"s":"a\n\"b\""}"#;
        let v = from_str(doc).unwrap();
        let rendered = to_string(&v).unwrap();
        assert_eq!(from_str(&rendered).unwrap(), v);
        // Integral numbers come back as integer literals, keys stay sorted.
        assert!(rendered.contains("\"n\":-3"));
        assert!(rendered.contains("\"ns\":12.5"));
        assert!(rendered.contains("\"s\":\"a\\n\\\"b\\\"\""));
    }

    #[test]
    fn to_string_escapes_controls() {
        let v = Value::String("\u{1}\t".to_string());
        assert_eq!(to_string(&v).unwrap(), "\"\\u0001\\t\"");
        assert_eq!(from_str(&to_string(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_numbers_and_values() {
        assert!(from_str("1.2.3").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("tru").is_err());
        assert!(from_str("").is_err());
    }
}
