//! Offline stand-in for the real `proptest` crate.
//!
//! The build container has no crates-registry access, so the workspace ships
//! this shim as a path dependency. It supports the subset of proptest the
//! HAMS test suites use:
//!
//! * the [`proptest!`] macro (with an optional leading
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`),
//! * strategies: primitive ranges (`0u64..512`, `-1e6f64..1e6`),
//!   `any::<T>()`, tuples of strategies, and `collection::vec`,
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`.
//!
//! Differences from the real crate: cases are sampled from a deterministic
//! per-test stream (derived from the test name and the case index), there is
//! no failure-case shrinking, and a failed assertion panics immediately with
//! the standard assert message. Swap the path dependency for crates.io
//! `proptest` to get shrinking back; no source changes are required.

use core::ops::Range;

/// Number of cases run per property when no explicit config is given. The
/// real proptest defaults to 256; the shim trades depth for suite runtime.
pub const DEFAULT_CASES: u32 = 48;

/// Mirror of `proptest::prelude::ProptestConfig` (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Deterministic xoshiro256++ stream used to sample strategy values.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A stream fully determined by the owning test's name and case index.
    #[must_use]
    pub fn deterministic(case: u64, test_name: &str) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut x = h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut s = [0u64; 4];
        for w in &mut s {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *w = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

/// A source of random values of one type, mirroring `proptest::Strategy`
/// (sampling only — the shim does not shrink).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + rng.next_unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).sample(rng) as f32
    }
}

/// Whole-domain sampling for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Samples one value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// The `proptest::prelude::any` entry point: sample the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Property assertion; the shim panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion; the shim panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion; the shim panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `config.cases` times from
/// a deterministic per-test stream and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng = $crate::TestRng::deterministic(case, concat!(module_path!(), "::", stringify!($name)));
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_within_bounds() {
        let mut rng = crate::TestRng::deterministic(0, "bounds");
        for _ in 0..1_000 {
            let v = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&v));
            let xs = collection::vec(0u8..3, 2..6).sample(&mut rng);
            assert!(xs.len() >= 2 && xs.len() < 6);
            assert!(xs.iter().all(|x| *x < 3));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        let mut a = crate::TestRng::deterministic(3, "det");
        let mut b = crate::TestRng::deterministic(3, "det");
        let s = (0u64..1_000_000, any::<bool>());
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }

    proptest! {
        /// The macro itself: strategies bind and assertions run.
        #[test]
        fn macro_end_to_end(x in 1u64..100, flip in any::<bool>(), xs in collection::vec(0u32..7, 1..20)) {
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(xs.len(), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Explicit configs parse and apply.
        #[test]
        fn configured_cases_run(seed in 0u64..10) {
            prop_assert!(seed < 10);
        }
    }
}
