//! Offline stand-in for the real `rand` crate.
//!
//! The build container has no crates-registry access, so the workspace ships
//! this shim as a path dependency. It implements the exact API surface the
//! HAMS crates use — `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` methods `gen`, `gen_range`, `gen_bool` — over a deterministic
//! xoshiro256++ generator. Streams are reproducible across runs and
//! platforms, which is all the experiments require; the exact values differ
//! from the real `StdRng` (ChaCha12), so regenerated figures are
//! self-consistent rather than bit-identical to runs made with crates.io
//! `rand`. Swap the path dependency for the real crate when registry access
//! exists; no source changes are required.

use core::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples one value from the full domain of the type.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types that `Rng::gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Samples uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// User-facing random-value methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Samples a value covering the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from the half-open `range`. Panics if it is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64_unit(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[inline]
fn f64_unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_unit(rng.next_u64())
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                // Modulo sampling: the bias is < span / 2^64, far below
                // anything the experiments could observe.
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let sampled = range.start + f64_unit(rng.next_u64()) * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if sampled >= range.end {
            range.start
        } else {
            sampled
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let wide = f64::sample_range(rng, f64::from(range.start)..f64::from(range.end)) as f32;
        if wide >= range.end {
            range.start
        } else {
            wide
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Not cryptographic; statistically solid for simulation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the 64-bit seed with SplitMix64, the reference
            // initialisation for the xoshiro family.
            let mut x = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *w = z ^ (z >> 31);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "observed {rate}");
    }
}
