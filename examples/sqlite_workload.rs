//! Runs the paper's SQLite workloads (Table III) on the `mmap` baseline and
//! on advanced HAMS, printing the throughput the paper plots in Fig. 16b.
//!
//! Run with: `cargo run --release --example sqlite_workload`

use hams::platforms::{run_workload, PlatformKind, ScaleProfile};
use hams::workloads::{WorkloadClass, WorkloadSpec};

fn main() {
    // Capacities and dataset sizes are scaled down by 512x so the example
    // finishes in seconds while preserving the cache-to-dataset ratio.
    let scale = ScaleProfile {
        capacity_divisor: 512,
        accesses: 20_000,
        seed: 1,
    };

    let sqlite: Vec<WorkloadSpec> = WorkloadSpec::sqlite();
    println!(
        "{:<8} {:>14} {:>14} {:>9}",
        "workload", "mmap (ops/s)", "hams-TE (ops/s)", "speedup"
    );
    for spec in sqlite {
        let mut mmap = PlatformKind::Mmap.build(&scale);
        let mut hams_te = PlatformKind::HamsTE.build(&scale);
        let baseline = run_workload(mmap.as_mut(), spec, &scale);
        let hams = run_workload(hams_te.as_mut(), spec, &scale);
        println!(
            "{:<8} {:>14.0} {:>14.0} {:>8.2}x",
            spec.name,
            baseline.paper_throughput(WorkloadClass::Sqlite),
            hams.paper_throughput(WorkloadClass::Sqlite),
            hams.ops_per_sec / baseline.ops_per_sec.max(f64::MIN_POSITIVE),
        );
    }
    println!();
    println!(
        "The paper reports hams-TE at roughly 1.4x mmap on the SQLite suite \
         (and ~2.5x on the page-granular microbenchmarks)."
    );
}
