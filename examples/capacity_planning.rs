//! Capacity planning with HAMS: how throughput degrades as the working set
//! outgrows the NVDIMM cache, and how the MoS page size changes the picture —
//! the practical question behind Fig. 20.
//!
//! Run with: `cargo run --release --example capacity_planning`

use hams::core::{AttachMode, PersistMode};
use hams::platforms::{run_workload, HamsPlatform, ScaleProfile};
use hams::workloads::WorkloadSpec;

fn main() {
    let scale = ScaleProfile {
        capacity_divisor: 512,
        accesses: 15_000,
        seed: 9,
    };
    let nvdimm_bytes = scale.cache_bytes();
    let base = WorkloadSpec::by_name("rndSel").expect("known workload");

    println!("NVDIMM cache: {} MiB", nvdimm_bytes >> 20);
    println!();
    println!("--- working set sweep (hams-TE) ---");
    println!(
        "{:>18} {:>12} {:>10}",
        "dataset / cache", "ops/s", "hit rate"
    );
    for multiple in [1u64, 2, 4, 8, 16] {
        let spec = base.with_dataset_bytes(nvdimm_bytes * multiple);
        let mut platform =
            HamsPlatform::scaled(AttachMode::Tight, PersistMode::Extend, nvdimm_bytes);
        // Run the pre-scaled spec directly: the profile's dataset scaling is
        // bypassed by passing an already-scaled spec with divisor semantics.
        let m = run_workload(
            &mut platform,
            spec,
            &ScaleProfile {
                capacity_divisor: 1,
                ..scale
            },
        );
        println!(
            "{:>17}x {:>12.0} {:>9.1}%",
            multiple,
            m.ops_per_sec,
            m.hit_rate.unwrap_or(0.0) * 100.0
        );
    }

    println!();
    println!("--- MoS page size sweep (dataset = 4x cache, hams-TE) ---");
    println!("{:>12} {:>12}", "page size", "ops/s");
    for page_size in [4096u64, 16 << 10, 64 << 10, 128 << 10, 256 << 10] {
        let spec = base.with_dataset_bytes(nvdimm_bytes * 4);
        let config = hams::core::HamsConfig {
            nvdimm: hams::nvdimm::NvdimmConfig {
                capacity_bytes: nvdimm_bytes,
                ..hams::nvdimm::NvdimmConfig::hpe_8gb()
            },
            pinned: hams::nvdimm::PinnedRegionLayout::tiny_for_tests(),
            ..hams::core::HamsConfig::tight(PersistMode::Extend)
        }
        .with_mos_page_size(page_size);
        let mut platform = HamsPlatform::from_config(config);
        let m = run_workload(
            &mut platform,
            spec,
            &ScaleProfile {
                capacity_divisor: 1,
                ..scale
            },
        );
        println!("{:>11}B {:>12.0}", page_size, m.ops_per_sec);
    }
}
