//! Uses HAMS as a *working memory expansion* (the paper's other headline use
//! case): an out-of-core workload whose footprint is several times the NVDIMM
//! cache streams through the MoS address space, and we watch how the hit rate
//! and effective access latency evolve as the working set grows.
//!
//! Run with: `cargo run --release --example working_memory_expansion`

use hams::core::{HamsConfig, HamsController, PersistMode};
use hams::nvdimm::{NvdimmConfig, PinnedRegionLayout};
use hams::sim::rng::seeded_rng;
use hams::sim::Nanos;
use rand::Rng;

fn main() {
    // 16 MiB NVDIMM cache in front of the flash archive, 4 KiB MoS pages.
    let config = HamsConfig {
        nvdimm: NvdimmConfig {
            capacity_bytes: 16 << 20,
            ..NvdimmConfig::hpe_8gb()
        },
        pinned: PinnedRegionLayout::tiny_for_tests(),
        ..HamsConfig::tight(PersistMode::Extend)
    }
    .with_mos_page_size(4096);
    let mut hams = HamsController::new(config);
    let cache_bytes = 16u64 << 20;

    println!(
        "NVDIMM cache: {} MiB, MoS capacity: {} GiB",
        cache_bytes >> 20,
        hams.mos_capacity_bytes() >> 30
    );
    println!();
    println!(
        "{:>16} {:>12} {:>14} {:>12}",
        "working set", "hit rate", "avg access", "evictions"
    );

    let mut rng = seeded_rng(99);
    let mut now = Nanos::ZERO;
    for multiple in [1u64, 2, 4, 8] {
        let span = cache_bytes * multiple;
        let accesses = 30_000u64;
        let start_time = now;
        let start_hits = hams.stats().hits;
        let start_accesses = hams.stats().accesses;
        let start_evictions = hams.stats().evictions;
        for _ in 0..accesses {
            let addr = rng.gen_range(0..span / 64) * 64;
            let is_write = rng.gen_bool(0.3);
            now = hams.access(addr, is_write, 64, now).finished_at;
        }
        let window_hits = hams.stats().hits - start_hits;
        let window_accesses = hams.stats().accesses - start_accesses;
        let avg = (now - start_time) / accesses;
        println!(
            "{:>13}xMiB {:>11.1}% {:>14} {:>12}",
            (span >> 20),
            window_hits as f64 / window_accesses as f64 * 100.0,
            avg.to_string(),
            hams.stats().evictions - start_evictions,
        );
    }

    println!();
    println!(
        "As the working set outgrows the NVDIMM, the hit rate falls and the \
         average access time rises toward the ULL-Flash fill latency — the \
         regime where HAMS still works but an NVDIMM-only system simply could \
         not hold the data."
    );
}
