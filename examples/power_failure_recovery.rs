//! Demonstrates the persistency control of §V-C: dirty MoS pages, in-flight
//! eviction commands, a power failure, and journal-tag driven recovery.
//!
//! Run with: `cargo run --example power_failure_recovery`

use hams::core::{AttachMode, HamsConfig, HamsController, PersistMode};
use hams::sim::Nanos;

fn main() {
    let config = HamsConfig::tiny_for_tests(AttachMode::Loose, PersistMode::Extend);
    let mut hams = HamsController::new(config);
    let page_size = hams.config().mos_page_size;

    // Write more pages than the NVDIMM cache holds so that evictions to
    // ULL-Flash are in flight when the power fails.
    let pages_to_write = hams.cache_sets() as u64 + 32;
    let mut now = Nanos::ZERO;
    let mut written = Vec::new();
    for i in 0..pages_to_write {
        let addr = i * page_size;
        let result = hams.access(addr, true, 64, now);
        now = result.finished_at;
        written.push(hams.page_of(addr));
    }
    println!(
        "wrote {pages_to_write} MoS pages; {} evictions issued",
        hams.stats().evictions
    );

    // Pull the plug.
    let event = hams.power_fail(now);
    println!();
    println!("power failure at {now}:");
    println!("  NVDIMM backup duration  : {}", event.nvdimm_backup);
    println!(
        "  SSD dirty pages flushed : {}",
        event.ssd.flushed_pages.len()
    );
    println!("  journal-tagged commands : {}", event.incomplete_commands);

    // Power returns: scan the pinned SQ region and re-issue what never finished.
    let report = hams.recover(now);
    println!();
    println!("recovery:");
    println!("  re-issued commands for pages {:?}", report.reissued_pages);
    println!("  recovery complete at {}", report.completed_at);

    // Every acknowledged write must still be reachable.
    let lost: Vec<u64> = written
        .iter()
        .copied()
        .filter(|&p| !hams.is_page_recoverable(p, report.completed_at))
        .collect();
    if lost.is_empty() {
        println!();
        println!(
            "all {} written pages survived the power failure",
            written.len()
        );
    } else {
        println!();
        println!("LOST PAGES (this would be a bug): {lost:?}");
        std::process::exit(1);
    }
}
