//! Degraded-mode serving end to end: fail a device in the parity array
//! mid-run, serve through the outage (reads reconstruct from the survivors,
//! writes are parity-absorbed), let the spare arrive and the rebuild drain,
//! and watch the whole episode through the fault state machine and the
//! platform's telemetry gauges.
//!
//! Run with: `cargo run --release --example degraded_serving`

use hams::core::{FaultPlan, RebuildConfig};
use hams::platforms::{
    build_fault_platform, fault_label, run_workload, run_workload_open_loop, OpenLoopConfig,
    Platform, ScaleProfile,
};
use hams::sim::Nanos;
use hams::workloads::WorkloadSpec;

fn print_gauges(platform: &dyn Platform, when: &str) {
    let mut gauges = Vec::new();
    platform.telemetry_gauges(&mut gauges);
    println!("--- telemetry gauges {when} ---");
    for (name, value) in gauges {
        println!("{name:<28} {value}");
    }
    println!();
}

fn main() {
    let scale = ScaleProfile {
        capacity_divisor: 512,
        accesses: 20_000,
        seed: 7,
    };
    let spec = WorkloadSpec::by_name("rndWr").expect("known workload");

    // Calibrate the healthy array's closed-loop service rate, then offer
    // 70% of it open-loop — sustained pressure, so the failure and the
    // rebuild both contend with real foreground traffic.
    let service_rate = {
        let mut platform = build_fault_platform(&scale);
        let m = run_workload(&mut platform, spec, &scale);
        m.accesses as f64 / m.total_time.as_secs_f64().max(1e-12)
    };
    let offered = 0.7 * service_rate;
    let span = Nanos::from_nanos_f64(scale.accesses as f64 / offered * 1e9);

    // Device 0 fail-stops at 30% of the expected run, its spare arrives at
    // 40%, and the rebuild copies one reconstructed row every 0.01% of the
    // run — slow enough to overlap plenty of foreground serving.
    let plan = FaultPlan::new()
        .with_fail_stop(0, span.scale(0.30), span.scale(0.40))
        .with_rebuild(RebuildConfig {
            row_interval: span.scale(1e-4).max(Nanos::from_nanos(1)),
            ..RebuildConfig::default()
        });

    let mut platform = build_fault_platform(&scale);
    assert!(
        platform.configure_faults(&plan),
        "the parity array accepts fault plans"
    );
    println!(
        "{} serving {} open-loop at {:.0}/s with a planned device failure\n",
        fault_label(),
        spec.name,
        offered
    );

    let metrics = run_workload_open_loop(
        &mut platform,
        spec,
        &scale,
        &OpenLoopConfig::poisson(offered),
    );
    // Drive simulated time past the end of the stream so the trailing
    // rebuild rows drain and the array returns to healthy.
    platform.advance_faults(metrics.last_finish.max(span).scale(2.0));

    let [p50, p99, p999] = metrics.sojourn_p50_p99_p999();
    let us = |p: Option<Nanos>| p.map_or(0.0, |n| n.as_micros_f64());
    println!("--- serving through the outage ---");
    println!(
        "arrivals={} served={} dropped={}  sojourn p50={:.1}us p99={:.1}us p999={:.1}us\n",
        metrics.arrivals,
        metrics.served,
        metrics.dropped,
        us(p50),
        us(p99),
        us(p999),
    );

    let controller = platform.controller();
    println!("--- fault state machine ---");
    let injector = controller.archive().fault().expect("plan installed");
    let mut previous = "Healthy".to_owned();
    for (at, state) in injector.transitions() {
        println!("t={:>10.1}us  {previous} -> {state:?}", at.as_micros_f64());
        previous = format!("{state:?}");
    }
    println!();

    let stats = controller.fault_stats().expect("plan installed");
    println!("--- degraded-mode accounting ---");
    println!("degraded reads            {}", stats.degraded_reads);
    println!("reconstruction reads      {}", stats.reconstruction_reads);
    println!("parity-absorbed writes    {}", stats.parity_absorbed_writes);
    println!(
        "rebuild rows              {}/{}",
        stats.rebuild_rows_done, stats.rebuild_rows_total
    );
    println!(
        "rebuild traffic           {} reads, {} writes\n",
        stats.rebuild_reads, stats.rebuild_writes
    );

    print_gauges(&platform, "after recovery");

    assert_eq!(stats.faults_injected, 1);
    assert_eq!(stats.repairs_completed, 1);
    println!(
        "recovered at t={:.1}us: the array is healthy again and every page \
         durable before the failure is durable now.",
        injector
            .recovered_at()
            .expect("rebuild completed")
            .as_micros_f64()
    );
}
