//! Request-lifecycle tracing on the serving spine: attach the simulated-time
//! span tracer and metrics registry to an open-loop hams-TE run, then walk
//! what they captured — per-layer span counts, one request's journey through
//! the spine, a metric series, and the first lines of the Chrome-trace
//! export that `throughput --trace` writes to disk.
//!
//! Run with: `cargo run --release --example tracing`

use hams::platforms::{
    run_workload, run_workload_open_loop_traced, OpenLoopConfig, PlatformKind, ScaleProfile,
};
use hams::telemetry::{chrome_trace_json, Layer, RunTelemetry};
use hams::workloads::WorkloadSpec;

fn main() {
    let scale = ScaleProfile {
        capacity_divisor: 512,
        accesses: 10_000,
        seed: 11,
    };
    let spec = WorkloadSpec::by_name("rndRd").expect("known workload");

    // Calibrate the closed-loop service rate, then offer 90% of it as an
    // open-loop Poisson stream — enough pressure for real queueing without
    // saturating the box.
    let service_rate = {
        let mut platform = PlatformKind::HamsTE.build(&scale);
        let m = run_workload(platform.as_mut(), spec, &scale);
        m.accesses as f64 / m.total_time.as_secs_f64().max(1e-12)
    };
    let config = OpenLoopConfig::poisson(0.9 * service_rate);
    let mut platform = PlatformKind::HamsTE.build(&scale);
    let mut telemetry =
        RunTelemetry::with_capacity(scale.accesses * 8, hams::telemetry::DEFAULT_BUCKET_WIDTH);
    let metrics =
        run_workload_open_loop_traced(platform.as_mut(), spec, &scale, &config, &mut telemetry);

    println!("--- traced hams-TE rndRd open-loop run ---");
    println!(
        "arrivals={} served={} dropped={}  spans recorded={}",
        metrics.arrivals,
        metrics.served,
        metrics.dropped,
        telemetry.recorder.len()
    );

    // Tracing is observation only: the run metrics are byte-identical with
    // the tracer detached (tests/telemetry_equivalence.rs pins this on all
    // eleven platforms).
    println!("\n--- spans per serving-spine layer ---");
    let counts = telemetry.layer_counts();
    for layer in Layer::ALL {
        println!("{:<10} {}", layer.name(), counts[layer.index()]);
    }

    // Follow one page through the spine: every span carries the MoS page as
    // its correlation id, plus shard/queue/device tags where they apply.
    let spans = telemetry.spans_sorted();
    if let Some(page) = spans
        .iter()
        .find(|s| s.layer == Layer::Nvme)
        .and_then(|s| s.request)
    {
        println!("\n--- journey of MoS page {page} ---");
        for s in spans.iter().filter(|s| s.request == Some(page)).take(12) {
            let tag = [
                s.shard.map(|v| format!("shard={v}")),
                s.queue.map(|v| format!("queue={v}")),
                s.device.map(|v| format!("device={v}")),
            ]
            .into_iter()
            .flatten()
            .collect::<Vec<_>>()
            .join(" ");
            println!(
                "{:>12} .. {:>12} ns  {:<10} {:<14} {tag}",
                s.start.as_nanos(),
                s.end.as_nanos(),
                s.layer.name(),
                s.name
            );
        }
    }

    // The registry samples typed series on a simulated-time bucket grid.
    println!("\n--- nvme_inflight series (first 5 buckets) ---");
    if let Some(series) = telemetry.registry.get("nvme_inflight") {
        for bucket in series.buckets().iter().take(5) {
            println!(
                "t={:>10} ns  samples={:<4} mean={:.2} max={:.0}",
                bucket.start.as_nanos(),
                bucket.samples,
                bucket.mean(),
                bucket.max
            );
        }
    }

    // The Chrome-trace export: load the full file in Perfetto
    // (ui.perfetto.dev) or chrome://tracing. `cargo run -p hams-bench --bin
    // throughput -- --quick --trace` writes it plus the series CSV/JSON.
    let trace = chrome_trace_json(&[("hams-TE rndRd".to_owned(), spans)]);
    println!("\n--- chrome trace export ({} bytes) ---", trace.len());
    for line in trace.lines().take(6) {
        println!("{line}");
    }
    println!("...");
}
