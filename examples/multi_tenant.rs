//! Multi-tenant serving on one HAMS box: a latency-sensitive reader shares
//! the memory-over-storage platform with a write-heavy neighbour, and the
//! per-tenant accounting shows who pays for the contention — the scenario
//! behind fig25's interference sweep.
//!
//! Run with: `cargo run --release --example multi_tenant`

use hams::platforms::{
    run_tenant_set_open_loop, run_workload, OpenLoopConfig, PlatformKind, ScaleProfile,
};
use hams::workloads::{ArrivalProcess, TenantSet, TenantSpec, WorkloadSpec};

fn main() {
    let scale = ScaleProfile {
        capacity_divisor: 512,
        accesses: 15_000,
        seed: 11,
    };
    let victim_spec = WorkloadSpec::by_name("rndRd").expect("known workload");
    let antagonist_spec = WorkloadSpec::by_name("update").expect("known workload");

    println!("--- multi-tenant open-loop serving ---");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "platform", "victim p50", "p99 (us)", "p999 (us)", "drops", "fairness"
    );
    for kind in [
        PlatformKind::Mmap,
        PlatformKind::HamsLE,
        PlatformKind::HamsTE,
    ] {
        // Calibrate the platform's closed-loop service rate on the victim's
        // workload, then offer it 30% from the victim and 150% from the
        // antagonist — a neighbour the box cannot fully absorb.
        let service_rate = {
            let mut platform = kind.build(&scale);
            let m = run_workload(platform.as_mut(), victim_spec, &scale);
            m.accesses as f64 / m.total_time.as_secs_f64().max(1e-12)
        };
        let antagonist_rate = 1.5 * service_rate;
        // Scale the antagonist's request count with its rate so both
        // tenants stay active over the same simulated window.
        let antagonist_accesses = scale.accesses * 5;
        let set = TenantSet::new(vec![
            TenantSpec::new(
                "latency-sensitive",
                victim_spec,
                ArrivalProcess::Poisson {
                    rate_per_sec: 0.3 * service_rate,
                },
            ),
            TenantSpec::new(
                "noisy-neighbour",
                antagonist_spec,
                ArrivalProcess::Poisson {
                    rate_per_sec: antagonist_rate,
                },
            )
            .with_accesses(antagonist_accesses)
            .with_weight(2.0),
        ]);

        let mut platform = kind.build(&scale);
        let config = OpenLoopConfig::poisson(service_rate).with_records(false);
        let m = run_tenant_set_open_loop(platform.as_mut(), &set, &scale, &config);

        let victim = m.tenant("latency-sensitive").expect("tenant by name");
        let [p50, p99, p999] = victim.sojourn_p50_p99_p999();
        let us = |t: Option<hams::sim::Nanos>| t.map_or(f64::NAN, hams::sim::Nanos::as_micros_f64);
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1} {:>10} {:>9.3}",
            kind.label(),
            us(p50),
            us(p99),
            us(p999),
            victim.dropped,
            m.fairness()
        );

        // The merged totals are exactly the per-tenant sums.
        assert_eq!(
            m.tenants.iter().map(|t| t.arrivals).sum::<u64>(),
            m.merged.arrivals
        );
        assert_eq!(
            m.tenants.iter().map(|t| t.served).sum::<u64>(),
            m.merged.served
        );
    }
    println!();
    println!(
        "Fairness is Jain's index over weight-normalized achieved rates: 1.0 means \
         throughput proportional to weights, 1/n means one tenant got everything."
    );
}
