//! Compares all eleven evaluated platforms on one microbenchmark and one
//! SQLite workload — a command-line rendition of Fig. 16.
//!
//! Run with: `cargo run --release --example platform_comparison`

use hams::platforms::{run_workload, PlatformKind, ScaleProfile};
use hams::workloads::WorkloadSpec;

fn main() {
    let scale = ScaleProfile {
        capacity_divisor: 512,
        accesses: 15_000,
        seed: 3,
    };

    for workload in ["rndWr", "update"] {
        let spec = WorkloadSpec::by_name(workload).expect("known workload");
        println!("=== {workload} ===");
        println!(
            "{:<12} {:>14} {:>10} {:>10} {:>12}",
            "platform", "K pages/s", "IPC", "hit rate", "persistent"
        );
        let mut baseline_pages = None;
        for kind in PlatformKind::all() {
            let mut platform = kind.build(&scale);
            let m = run_workload(platform.as_mut(), spec, &scale);
            if kind == PlatformKind::Mmap {
                baseline_pages = Some(m.pages_per_sec);
            }
            let speedup = baseline_pages
                .map(|b| m.pages_per_sec / b.max(f64::MIN_POSITIVE))
                .unwrap_or(1.0);
            println!(
                "{:<12} {:>14.1} {:>10.4} {:>9.1}% {:>11}  ({speedup:.2}x mmap)",
                m.platform,
                m.pages_per_sec / 1000.0,
                m.ipc,
                m.hit_rate.unwrap_or(0.0) * 100.0,
                if platform.is_persistent() {
                    "yes"
                } else {
                    "no"
                },
            );
        }
        println!();
    }
}
