//! Quickstart: build an advanced HAMS controller, drive a short access
//! stream at it and print the cache behaviour and latency breakdown.
//!
//! Run with: `cargo run --example quickstart`

use hams::core::{AttachMode, HamsConfig, HamsController, PersistMode};
use hams::sim::Nanos;

fn main() {
    // A scaled-down advanced HAMS (DDR4-attached ULL-Flash, extend mode).
    // `HamsConfig::tight(PersistMode::Extend)` is the paper-scale equivalent.
    let config = HamsConfig::tiny_for_tests(AttachMode::Tight, PersistMode::Extend);
    let mut hams = HamsController::new(config);

    println!(
        "MoS capacity      : {} GiB",
        hams.mos_capacity_bytes() >> 30
    );
    println!("NVDIMM cache sets : {}", hams.cache_sets());
    println!();

    // Touch a small working set repeatedly, plus a cold page now and then.
    let mut now = Nanos::ZERO;
    for i in 0..2_000u64 {
        let addr = if i % 50 == 0 {
            // A cold page, far away: will miss and be filled from ULL-Flash.
            (i * 977) % (hams.mos_capacity_bytes() / 2)
        } else {
            // The hot working set: a few KiB that stays cached in NVDIMM.
            (i % 64) * 64
        };
        let result = hams.access(addr, i % 3 == 0, 64, now);
        now = result.finished_at;
    }

    let stats = hams.stats();
    println!("accesses          : {}", stats.accesses);
    println!("NVDIMM hit rate   : {:.1}%", stats.hit_rate() * 100.0);
    println!("evictions         : {}", stats.evictions);
    println!("wait-queue stalls : {}", stats.wait_stalls);
    println!();
    println!("memory delay breakdown (critical path):");
    for (component, time) in stats.delay.iter() {
        println!(
            "  {component:<8} {time}  ({:.1}%)",
            stats.delay.fraction(component) * 100.0
        );
    }
    println!();
    println!("total simulated time: {now}");
}
