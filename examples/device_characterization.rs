//! Characterises the three SSD classes the paper compares (SATA, NVMe 750,
//! Z-NAND ULL-Flash) the way §III-A does with fio: 4 KB random reads and
//! writes at increasing queue depth, reporting latency and bandwidth.
//!
//! Run with: `cargo run --release --example device_characterization`

use hams::flash::{SsdConfig, SsdDevice};
use hams::nvme::{NvmeCommand, PrpList};
use hams::sim::Nanos;
use hams::workloads::{FioJob, FioPattern};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Replays a job keeping `io_depth` requests outstanding; returns
/// (average latency, bandwidth MB/s).
fn replay(ssd: &mut SsdDevice, job: &FioJob, count: usize) -> (Nanos, f64) {
    let requests = job.requests(11, count);
    let mut outstanding: BinaryHeap<Reverse<Nanos>> = BinaryHeap::new();
    let mut now = Nanos::ZERO;
    let mut total_latency = Nanos::ZERO;
    let mut makespan = Nanos::ZERO;
    for r in &requests {
        while outstanding.len() >= job.io_depth {
            let Reverse(done) = outstanding.pop().expect("queue not empty");
            now = now.max(done);
        }
        let cmd = if r.is_write {
            NvmeCommand::write(1, r.offset / 4096, r.bytes, PrpList::single(0))
        } else {
            NvmeCommand::read(1, r.offset / 4096, r.bytes, PrpList::single(0))
        };
        let done = ssd.service(&cmd, now).expect("within capacity").finished_at;
        total_latency += done - now;
        makespan = makespan.max(done);
        outstanding.push(Reverse(done));
    }
    let avg = total_latency / requests.len() as u64;
    let bw = (requests.len() as u64 * job.request_bytes) as f64 / makespan.as_secs_f64() / 1e6;
    (avg, bw)
}

fn main() {
    let devices = [
        ("SATA SSD", SsdConfig::sata_ssd()),
        ("NVMe SSD", SsdConfig::nvme_750()),
        ("ULL-Flash", SsdConfig::ull_flash()),
    ];
    let span: u64 = 64 << 20;

    println!(
        "{:<10} {:<6} {:>6} {:>12} {:>12}",
        "device", "op", "depth", "latency(us)", "bw(MB/s)"
    );
    for (name, cfg) in devices {
        for is_write in [false, true] {
            for depth in [1usize, 4, 16, 32] {
                let mut ssd = SsdDevice::new(cfg);
                // Precondition: make the exercised region durable so reads
                // actually touch the flash array.
                for p in 0..(span / 4096).min(2048) {
                    let cmd = NvmeCommand::write(1, p, 4096, PrpList::single(0)).with_fua(true);
                    let _ = ssd.service(&cmd, Nanos::ZERO);
                }
                let mut job = FioJob::four_kib(FioPattern::Random, is_write, depth);
                job.span_bytes = span;
                let (lat, bw) = replay(&mut ssd, &job, 800);
                println!(
                    "{:<10} {:<6} {:>6} {:>12.1} {:>12.0}",
                    name,
                    if is_write { "write" } else { "read" },
                    depth,
                    lat.as_micros_f64(),
                    bw
                );
            }
        }
    }
    println!();
    println!(
        "Expected shape (paper Fig. 5): ULL-Flash latency stays flat with queue \
         depth and its bandwidth peaks at shallow queues, while the conventional \
         NVMe SSD's latency grows sharply."
    );
}
